#include "storage/shredder.h"

#include <set>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/str_util.h"
#include "obs/obs.h"
#include "xquery/evaluator.h"

namespace legodb::store {
namespace {

using map::Mapping;
using map::RelPath;
using map::Slot;
using map::TypeMapping;
using xs::Type;
using xs::TypePtr;

class Shredder {
 public:
  Shredder(const Mapping& mapping, Database* db) : m_(mapping), db_(db) {}

  Status Shred(const xml::Document& doc) {
    if (!doc.root) return Status::InvalidArgument("document has no root");
    std::vector<const xml::Node*> items = {doc.root.get()};
    size_t pos = 0;
    if (!ShredInstance(m_.schema().root_type(), items, &pos,
                       /*parent_type=*/"", /*parent_id=*/0, nullptr) ||
        pos != items.size()) {
      return Status::InvalidArgument(
          "document does not match the physical schema");
    }
    // Success: apply buffered inserts. On the paged backend an insert can
    // fail with real IO errors — roll back the rows already applied (LIFO
    // per table, which RemoveLastRows requires) so a failed document leaves
    // the database exactly as it found it.
    obs::Count("shred.rows", static_cast<int64_t>(buffer_.size()));
    for (size_t i = 0; i < buffer_.size(); ++i) {
      Status st = db_->GetTable(buffer_[i].table).Insert(
          std::move(buffer_[i].row));
      if (!st.ok()) {
        for (size_t k = i; k-- > 0;) {
          (void)db_->GetTable(buffer_[k].table).RemoveLastRows(1);
        }
        buffer_.clear();
        return st;
      }
    }
    buffer_.clear();
    return Status::OK();
  }

 private:
  struct Pending {
    std::string table;
    Row row;
  };

  // Matching context for one type instance.
  struct Ctx {
    const std::vector<const xml::Node*>* items;
    size_t pos = 0;
    const xml::Node* attr_elem = nullptr;  // element whose attributes apply
    // Attribute names of attr_elem consumed so far (scoped per element; an
    // element with unconsumed attributes does not match, mirroring the
    // validator).
    std::set<std::string>* matched_attrs = nullptr;
    Row* row = nullptr;
    const TypeMapping* tm = nullptr;
    RelPath path;
    int64_t self_id = 0;  // key of the row under construction
  };

  struct Checkpoint {
    size_t buffer_size;
    size_t pos;
    Row row_snapshot;
    std::set<std::string> attrs_snapshot;
  };

  Checkpoint Save(const Ctx& ctx) const {
    return Checkpoint{buffer_.size(), ctx.pos, *ctx.row,
                      ctx.matched_attrs ? *ctx.matched_attrs
                                        : std::set<std::string>()};
  }
  void Restore(const Checkpoint& cp, Ctx* ctx) {
    buffer_.resize(cp.buffer_size);
    ctx->pos = cp.pos;
    *ctx->row = cp.row_snapshot;
    if (ctx->matched_attrs) *ctx->matched_attrs = cp.attrs_snapshot;
  }

  int SlotColumnIndex(const Ctx& ctx, bool tilde) const {
    for (const auto& slot : ctx.tm->slots) {
      if (slot.is_tilde == tilde && slot.path == ctx.path) {
        const rel::Table& meta = db_->GetTable(ctx.tm->table).meta();
        return meta.ColumnIndex(slot.column);
      }
    }
    return -1;
  }

  bool SetScalar(Ctx* ctx, const TypePtr& scalar, const std::string& text) {
    std::string_view trimmed = StrTrim(text);
    if (scalar->scalar_kind == xs::ScalarKind::kInteger &&
        !IsInteger(trimmed)) {
      return false;
    }
    int col = SlotColumnIndex(*ctx, /*tilde=*/false);
    if (col < 0) return false;
    (*ctx->row)[col] = xq::CanonicalValue(text);
    return true;
  }

  // Matches type expression `t` against the context; consumes items and
  // fills columns. Returns false (restoring nothing itself — callers
  // checkpoint) on mismatch.
  bool MatchBody(const TypePtr& t, Ctx* ctx) {
    switch (t->kind) {
      case Type::Kind::kEmpty:
        return true;
      case Type::Kind::kScalar: {
        if (ctx->pos < ctx->items->size() &&
            (*ctx->items)[ctx->pos]->is_text()) {
          if (!SetScalar(ctx, t, (*ctx->items)[ctx->pos]->text())) {
            return false;
          }
          ++ctx->pos;
          return true;
        }
        // Empty content: acceptable for strings only.
        if (t->scalar_kind == xs::ScalarKind::kString) {
          return SetScalar(ctx, t, "");
        }
        return false;
      }
      case Type::Kind::kElement: {
        if (ctx->pos >= ctx->items->size()) return false;
        const xml::Node* item = (*ctx->items)[ctx->pos];
        if (!item->is_element() || !t->name.Matches(item->name())) {
          return false;
        }
        ctx->path.push_back(m_.ElementStep(ctx->tm->type_name, t.get()));
        if (t->name.is_wildcard()) {
          int col = SlotColumnIndex(*ctx, /*tilde=*/true);
          if (col < 0) {
            ctx->path.pop_back();
            return false;
          }
          (*ctx->row)[col] = Value::Str(item->name());
        }
        std::vector<const xml::Node*> children;
        for (const auto& c : item->children()) children.push_back(c.get());
        std::set<std::string> attrs;
        Ctx inner = *ctx;
        inner.items = &children;
        inner.pos = 0;
        inner.attr_elem = item;
        inner.matched_attrs = &attrs;
        bool ok = MatchBody(t->child, &inner) && inner.pos == children.size();
        if (ok) {
          // Every attribute present on the element must be declared.
          for (const auto& [attr_name, attr_value] : item->attributes()) {
            (void)attr_value;
            if (!attrs.count(attr_name)) {
              ok = false;
              break;
            }
          }
        }
        ctx->path.pop_back();
        if (!ok) return false;
        ++ctx->pos;
        return true;
      }
      case Type::Kind::kAttribute: {
        if (!ctx->attr_elem) return false;
        const std::string* value =
            ctx->attr_elem->FindAttribute(t->name.name);
        if (!value) return false;
        ctx->path.push_back("@" + t->name.name);
        bool ok = SetScalarFromAttr(ctx, t->child, *value);
        ctx->path.pop_back();
        if (ok && ctx->matched_attrs) {
          ctx->matched_attrs->insert(t->name.name);
        }
        return ok;
      }
      case Type::Kind::kSequence: {
        for (const auto& c : t->children) {
          if (!MatchBody(c, ctx)) return false;
        }
        return true;
      }
      case Type::Kind::kUnion: {
        // Stratification: alternatives are type refs.
        for (const auto& alt : t->children) {
          Checkpoint cp = Save(*ctx);
          if (ShredInstance(alt->ref_name, *ctx->items, &ctx->pos,
                            ctx->tm->type_name, ctx->self_id,
                            ctx->attr_elem, ctx->matched_attrs)) {
            return true;
          }
          Restore(cp, ctx);
        }
        return false;
      }
      case Type::Kind::kRepetition: {
        if (t->is_optional_rep()) {
          Checkpoint cp = Save(*ctx);
          if (MatchBody(t->child, ctx)) return true;
          Restore(cp, ctx);
          return true;  // zero occurrences
        }
        uint32_t matched = 0;
        while (matched < t->max_occurs) {
          Checkpoint cp = Save(*ctx);
          size_t before = ctx->pos;
          bool ok;
          if (t->child->kind == Type::Kind::kTypeRef) {
            ok = ShredInstance(t->child->ref_name, *ctx->items, &ctx->pos,
                               ctx->tm->type_name, ctx->self_id,
                               ctx->attr_elem, ctx->matched_attrs);
          } else {
            // Union of refs.
            ok = MatchBody(t->child, ctx);
          }
          if (!ok || ctx->pos == before) {
            Restore(cp, ctx);
            break;
          }
          ++matched;
        }
        return matched >= t->min_occurs;
      }
      case Type::Kind::kTypeRef:
        return ShredInstance(t->ref_name, *ctx->items, &ctx->pos,
                             ctx->tm->type_name, ctx->self_id,
                             ctx->attr_elem, ctx->matched_attrs);
    }
    return false;
  }

  bool SetScalarFromAttr(Ctx* ctx, const TypePtr& scalar,
                         const std::string& value) {
    if (scalar && scalar->kind == Type::Kind::kScalar &&
        scalar->scalar_kind == xs::ScalarKind::kInteger &&
        !IsInteger(StrTrim(value))) {
      return false;
    }
    int col = SlotColumnIndex(*ctx, /*tilde=*/false);
    if (col < 0) return false;
    (*ctx->row)[col] = xq::CanonicalValue(value);
    return true;
  }

  // Matches one instance of named type `name` starting at items[*pos],
  // inserting (buffering) its row and its descendants' rows.
  bool ShredInstance(const std::string& name,
                     const std::vector<const xml::Node*>& items, size_t* pos,
                     const std::string& parent_type, int64_t parent_id,
                     const xml::Node* attr_elem,
                     std::set<std::string>* matched_attrs = nullptr) {
    const TypeMapping* tm = m_.FindType(name);
    if (!tm) return false;
    if (tm->virtual_union) {
      for (const auto& alt : tm->union_alternatives) {
        size_t saved_buffer = buffer_.size();
        size_t saved_pos = *pos;
        if (ShredInstance(alt, items, pos, parent_type, parent_id,
                          attr_elem, matched_attrs)) {
          return true;
        }
        buffer_.resize(saved_buffer);
        *pos = saved_pos;
      }
      return false;
    }
    const rel::Table& meta = db_->GetTable(tm->table).meta();
    Row row(meta.columns.size(), Value::MakeNull());
    int64_t id = db_->NextId();
    int key_idx = meta.ColumnIndex(meta.key_column);
    LEGODB_CHECK(key_idx >= 0, "mapped table lost its key column");
    row[key_idx] = Value::Int(id);
    if (!parent_type.empty()) {
      // Resolve the FK through virtual-union contraction: the effective
      // parent may be an ancestor of `parent_type`; since the caller passes
      // the concrete (non-virtual) parent, a direct link must exist.
      int fk_idx = meta.ColumnIndex("parent_" + parent_type);
      if (fk_idx >= 0) row[fk_idx] = Value::Int(parent_id);
    }
    size_t saved_buffer = buffer_.size();
    size_t saved_pos = *pos;
    Ctx ctx;
    ctx.items = &items;
    ctx.pos = *pos;
    ctx.attr_elem = attr_elem;
    ctx.matched_attrs = matched_attrs;
    ctx.row = &row;
    ctx.tm = tm;
    ctx.self_id = id;
    TypePtr body = m_.schema().Get(name);
    if (!MatchBody(body, &ctx)) {
      buffer_.resize(saved_buffer);
      *pos = saved_pos;
      return false;
    }
    *pos = ctx.pos;
    buffer_.push_back(Pending{tm->table, std::move(row)});
    return true;
  }

  const Mapping& m_;
  Database* db_;
  std::vector<Pending> buffer_;
};

}  // namespace

Status ShredDocument(const xml::Document& doc, const map::Mapping& mapping,
                     Database* db) {
  LEGODB_FAILPOINT("shredder.document");
  obs::Span span("shred.document");
  obs::Count("shred.documents");
  LEGODB_RETURN_IF_ERROR(Shredder(mapping, db).Shred(doc));
  // Write-back + durability barrier; no-op on the memory backend. This is
  // where the `storage.flush` failpoint surfaces to loaders.
  return db->Flush();
}

}  // namespace legodb::store
