#ifndef LEGODB_STORAGE_PAGER_H_
#define LEGODB_STORAGE_PAGER_H_

// Page-granular file IO for the paged storage backend.
//
// A Pager owns one backing file and hands out fixed-size pages by number.
// Reads and writes are positional (pread/pwrite), so any number of threads
// may move pages concurrently as long as they touch distinct pages — the
// buffer pool above serializes access per page, and the hash-join spill
// path writes pages it exclusively owns. Allocation keeps an in-memory
// free list (freed pages are recycled before the file grows), guarded by a
// mutex.
//
// When no path is given the pager creates an anonymous temp file (mkstemp
// + immediate unlink), so paged databases leave nothing behind on exit —
// the right default for a store whose durability story is "flush at the
// end of loading", not crash recovery.
//
// Failpoint sites (see common/failpoint.h): `storage.read`,
// `storage.write`, `storage.flush` fire on the corresponding operation,
// standing in for short reads, partial writes and fsync failures.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace legodb::store {

class Pager {
 public:
  struct Options {
    std::string path;        // empty = anonymous temp file
    size_t page_size = 8192; // bytes per page; must fit slotted u16 offsets
  };

  // Creates (or truncates) the backing file. Fails if the file cannot be
  // created or the page size is out of range (512 .. 65536).
  static StatusOr<std::unique_ptr<Pager>> Open(const Options& options);
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  size_t page_size() const { return page_size_; }
  // Pages ever allocated (including currently free ones).
  uint32_t page_count() const;

  // Returns a zeroed page number: a recycled freed page if one exists,
  // otherwise the file grows by one page.
  StatusOr<uint32_t> Allocate();
  // Returns `page` to the free list (no IO; content becomes garbage).
  void Free(uint32_t page);

  // Reads/writes exactly one page. `buf`/`data` must hold page_size bytes.
  Status Read(uint32_t page, char* buf);
  Status Write(uint32_t page, const char* data);

  // Durability barrier (fsync). `storage.flush` failpoint site.
  Status Sync();

  // Lifetime IO counters (relaxed; for gauges and tests).
  struct Stats {
    uint64_t pages_read = 0;
    uint64_t pages_written = 0;
    uint64_t syncs = 0;
  };
  Stats stats() const;

 private:
  Pager(int fd, std::string path, bool unlink_on_close, size_t page_size)
      : fd_(fd),
        path_(std::move(path)),
        unlink_on_close_(unlink_on_close),
        page_size_(page_size) {}

  int fd_ = -1;
  std::string path_;
  bool unlink_on_close_ = false;
  size_t page_size_ = 0;

  mutable std::mutex mu_;  // guards allocation state and counters
  uint32_t page_count_ = 0;
  std::vector<uint32_t> free_list_;
  Stats stats_;
};

}  // namespace legodb::store

#endif  // LEGODB_STORAGE_PAGER_H_
