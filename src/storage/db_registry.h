#ifndef LEGODB_STORAGE_DB_REGISTRY_H_
#define LEGODB_STORAGE_DB_REGISTRY_H_

// Versioned database handle for online reconfiguration.
//
// A DbRegistry holds the *current* storage configuration of one logical
// XML database as an immutable DbVersion snapshot: the relational mapping,
// the shredded store::Database, and a monotonically increasing generation
// number. Readers pin a version with Current() — a shared_ptr they hold
// for the lifetime of one request — and never observe a half-swapped
// state: Publish() installs a fully built replacement atomically, after
// which new requests see the new generation while in-flight requests keep
// executing against the version they pinned. The old version therefore
// "drains" naturally: it is destroyed when the last pinned request
// releases it, with no stop-the-world barrier anywhere.
//
// The Database inside a version is logically immutable once published
// (loading finished before Publish), but is held non-const because its
// index/column registries build lazily under internal locks; any number
// of concurrent readers is safe. The generation number is the plan-cache
// invalidation key: serving tags cached prepared plans with the
// generation they were compiled against, so a cached plan from a previous
// version degrades to a cache miss instead of silently executing against
// the wrong catalog (see serving/plan_cache.h).

#include <cstdint>
#include <memory>
#include <mutex>

#include "mapping/mapping.h"
#include "storage/database.h"

namespace legodb::store {

// One immutable (configuration, database) snapshot. Requests pin it for
// their lifetime; the migrator keeps the superseded version alive only
// until it drains.
struct DbVersion {
  uint64_t generation = 0;
  std::shared_ptr<const map::Mapping> mapping;
  std::shared_ptr<Database> db;  // logically const after publish
};

using DbVersionPtr = std::shared_ptr<const DbVersion>;

class DbRegistry {
 public:
  // Installs the initial version as generation 1. Both pointers must be
  // fully loaded (and ideally prewarmed) before the registry is shared.
  DbRegistry(std::shared_ptr<const map::Mapping> mapping,
             std::shared_ptr<Database> db);

  // The current version. Each caller holds the returned pointer for as
  // long as it needs a consistent view (one request, one verification
  // pass); releasing it is what lets a superseded version drain.
  DbVersionPtr Current() const;

  // Current generation number (== Current()->generation, cheaper).
  uint64_t generation() const;

  // Atomically replaces the current version with a new snapshot at the
  // next generation and returns it. The caller must have finished loading
  // `db` — after Publish it is visible to every thread.
  DbVersionPtr Publish(std::shared_ptr<const map::Mapping> mapping,
                       std::shared_ptr<Database> db);

  // Blocks until `version` is referenced only by the caller's pointer (all
  // pinned requests finished) or `timeout_ms` elapses. Returns the wait in
  // milliseconds (== timeout_ms on timeout). The reference count is
  // observed with shared_ptr::use_count — exact once no new pins can
  // appear, which holds after the version was superseded by Publish.
  static double WaitForDrain(const DbVersionPtr& version, double timeout_ms);

 private:
  mutable std::mutex mu_;
  uint64_t next_generation_;
  DbVersionPtr current_;
};

}  // namespace legodb::store

#endif  // LEGODB_STORAGE_DB_REGISTRY_H_
