#include "storage/reconstruct.h"

#include <algorithm>

#include "obs/obs.h"
#include "pschema/pschema.h"

namespace legodb::store {
namespace {

using map::Mapping;
using map::RelPath;
using map::TypeMapping;
using xs::Type;
using xs::TypePtr;

class Reconstructor {
 public:
  Reconstructor(Database* db, const Mapping& mapping) : db_(db), m_(mapping) {}

  Status EmitInstance(const std::string& type_name, size_t row_idx,
                      xml::Node* parent) {
    const TypeMapping* tm = m_.FindType(type_name);
    if (!tm || tm->virtual_union) {
      return Status::Internal("EmitInstance on virtual/unknown type '" +
                              type_name + "'");
    }
    StoredTable& table = db_->GetTable(tm->table);
    // Materialize the row once per instance — on the paged backend this is
    // the only way at it (rows live on slotted pages, not in a Row vector).
    LEGODB_ASSIGN_OR_RETURN(Row row, table.ReadRow(row_idx));
    int key_idx = table.meta().ColumnIndex(table.meta().key_column);
    Ctx ctx;
    ctx.tm = tm;
    ctx.table = &table;
    ctx.row = &row;
    ctx.self_id = row[key_idx].as_int();
    return EmitBody(m_.schema().Get(type_name), &ctx, parent,
                    /*under_optional=*/false);
  }

  // Finds a row by key id.
  StatusOr<size_t> FindRow(const std::string& type_name, int64_t id) {
    const TypeMapping* tm = m_.FindType(type_name);
    if (!tm || tm->virtual_union) {
      return Status::InvalidArgument("not a concrete type: " + type_name);
    }
    StoredTable& table = db_->GetTable(tm->table);
    table.EnsureIndex(table.meta().key_column);
    const std::vector<size_t>* hits =
        table.Probe(table.meta().key_column, Value::Int(id));
    if (!hits || hits->empty()) {
      return Status::NotFound("no row with id " + std::to_string(id));
    }
    return (*hits)[0];
  }

 private:
  struct Ctx {
    const TypeMapping* tm = nullptr;
    StoredTable* table = nullptr;
    const Row* row = nullptr;
    int64_t self_id = 0;
    RelPath path;
  };

  const Value* SlotValue(const Ctx& ctx, bool tilde) const {
    for (const auto& slot : ctx.tm->slots) {
      if (slot.is_tilde == tilde && slot.path == ctx.path) {
        int idx = ctx.table->meta().ColumnIndex(slot.column);
        if (idx >= 0) return &(*ctx.row)[idx];
      }
    }
    return nullptr;
  }

  // True if any column value or descendant row exists under `prefix` —
  // presence test for optional content.
  bool HasDataUnder(const Ctx& ctx, const RelPath& prefix) {
    for (const auto& slot : ctx.tm->slots) {
      if (slot.path.size() < prefix.size()) continue;
      if (!std::equal(prefix.begin(), prefix.end(), slot.path.begin())) {
        continue;
      }
      int idx = ctx.table->meta().ColumnIndex(slot.column);
      if (idx >= 0 && !(*ctx.row)[idx].is_null()) return true;
    }
    for (const auto& child : ctx.tm->children) {
      if (child.path.size() < prefix.size()) continue;
      if (!std::equal(prefix.begin(), prefix.end(), child.path.begin())) {
        continue;
      }
      if (!FetchChildren(ctx, child.type_name).empty()) return true;
    }
    return false;
  }

  // (id, concrete type, row index) of all child instances of `ref_type`
  // under this instance, in document (id) order.
  struct ChildRow {
    int64_t id;
    std::string type;
    size_t row_idx;
  };
  std::vector<ChildRow> FetchChildren(const Ctx& ctx,
                                      const std::string& ref_type) const {
    std::vector<ChildRow> out;
    CollectChildren(ctx, ref_type, 0, &out);
    std::sort(out.begin(), out.end(),
              [](const ChildRow& a, const ChildRow& b) { return a.id < b.id; });
    return out;
  }

  void CollectChildren(const Ctx& ctx, const std::string& ref_type, int depth,
                       std::vector<ChildRow>* out) const {
    if (depth > 16) return;
    const TypeMapping* ctm = m_.FindType(ref_type);
    if (!ctm) return;
    if (ctm->virtual_union) {
      for (const auto& alt : ctm->union_alternatives) {
        CollectChildren(ctx, alt, depth + 1, out);
      }
      return;
    }
    StoredTable& table = db_->GetTable(ctm->table);
    std::string fk = "parent_" + ctx.tm->type_name;
    if (table.meta().ColumnIndex(fk) < 0) return;
    table.EnsureIndex(fk);
    const std::vector<size_t>* hits =
        table.Probe(fk, Value::Int(ctx.self_id));
    if (!hits) return;
    StatusOr<const ColumnVector*> keys =
        table.GetOrBuildColumn(table.meta().key_column);
    if (!keys.ok()) return;  // best-effort: no children on IO failure
    for (size_t idx : *hits) {
      out->push_back(ChildRow{(*keys)->value(idx).as_int(), ref_type, idx});
    }
  }

  Status EmitChildren(const Ctx& ctx, const std::string& ref_type,
                      xml::Node* parent) {
    for (const auto& child : FetchChildren(ctx, ref_type)) {
      LEGODB_RETURN_IF_ERROR(EmitInstance(child.type, child.row_idx, parent));
    }
    return Status::OK();
  }

  Status EmitBody(const TypePtr& t, Ctx* ctx, xml::Node* parent,
                  bool under_optional) {
    switch (t->kind) {
      case Type::Kind::kEmpty:
        return Status::OK();
      case Type::Kind::kScalar: {
        const Value* v = SlotValue(*ctx, /*tilde=*/false);
        if (v && !v->is_null() && !v->ToString().empty()) {
          parent->AddText(v->ToString());
        }
        return Status::OK();
      }
      case Type::Kind::kElement: {
        ctx->path.push_back(m_.ElementStep(ctx->tm->type_name, t.get()));
        std::string tag;
        bool present = true;
        if (t->name.is_wildcard()) {
          const Value* tilde = SlotValue(*ctx, /*tilde=*/true);
          present = tilde && !tilde->is_null();
          if (present) tag = tilde->as_string();
        } else {
          tag = t->name.name;
          if (under_optional) present = HasDataUnder(*ctx, ctx->path);
        }
        Status st = Status::OK();
        if (present) {
          xml::Node* elem = parent->AddChild(xml::Node::Element(tag));
          st = EmitBody(t->child, ctx, elem, /*under_optional=*/false);
        }
        ctx->path.pop_back();
        return st;
      }
      case Type::Kind::kAttribute: {
        ctx->path.push_back("@" + t->name.name);
        const Value* v = SlotValue(*ctx, /*tilde=*/false);
        if (v && !v->is_null()) {
          parent->SetAttribute(t->name.name, v->ToString());
        }
        ctx->path.pop_back();
        return Status::OK();
      }
      case Type::Kind::kSequence: {
        for (const auto& c : t->children) {
          LEGODB_RETURN_IF_ERROR(EmitBody(c, ctx, parent, under_optional));
        }
        return Status::OK();
      }
      case Type::Kind::kUnion: {
        // Union of refs: merge the alternatives' children and emit them in
        // id (= document) order, since a repetition over the union may
        // interleave alternatives.
        std::vector<ChildRow> merged;
        for (const auto& alt : t->children) {
          CollectChildren(*ctx, alt->ref_name, 0, &merged);
        }
        std::sort(merged.begin(), merged.end(),
                  [](const ChildRow& a, const ChildRow& b) {
                    return a.id < b.id;
                  });
        for (const auto& child : merged) {
          LEGODB_RETURN_IF_ERROR(
              EmitInstance(child.type, child.row_idx, parent));
        }
        return Status::OK();
      }
      case Type::Kind::kRepetition: {
        if (t->is_optional_rep() &&
            t->child->kind != Type::Kind::kTypeRef &&
            t->child->kind != Type::Kind::kUnion) {
          return EmitBody(t->child, ctx, parent, /*under_optional=*/true);
        }
        return EmitBody(t->child, ctx, parent, under_optional);
      }
      case Type::Kind::kTypeRef:
        return EmitChildren(*ctx, t->ref_name, parent);
    }
    return Status::Internal("unreachable");
  }

  Database* db_;
  const Mapping& m_;
};

}  // namespace

Status ReconstructInstance(Database* db, const map::Mapping& mapping,
                           const std::string& type_name, int64_t id,
                           xml::Node* parent) {
  obs::Count("reconstruct.instances");
  Reconstructor r(db, mapping);
  LEGODB_ASSIGN_OR_RETURN(size_t row_idx, r.FindRow(type_name, id));
  return r.EmitInstance(type_name, row_idx, parent);
}

StatusOr<xml::Document> ReconstructDocument(Database* db,
                                            const map::Mapping& mapping) {
  obs::Span span("reconstruct.document");
  obs::Count("reconstruct.documents");
  const std::string& root = mapping.schema().root_type();
  const map::TypeMapping* tm = mapping.FindType(root);
  if (!tm || tm->virtual_union) {
    return Status::Unsupported("virtual root type");
  }
  StoredTable& table = db->GetTable(tm->table);
  if (table.row_count() == 0) {
    return Status::NotFound("no root instance stored");
  }
  // The document root has the smallest node id (the shredder assigns ids in
  // document order; buffered insert order differs for recursive types).
  LEGODB_ASSIGN_OR_RETURN(const ColumnVector* keys,
                          table.GetOrBuildColumn(table.meta().key_column));
  size_t root_idx = 0;
  int64_t best_id = keys->value(0).as_int();
  for (size_t i = 1; i < table.row_count(); ++i) {
    int64_t id = keys->value(i).as_int();
    if (id < best_id) {
      best_id = id;
      root_idx = i;
    }
  }
  Reconstructor r(db, mapping);
  xml::NodePtr holder = xml::Node::Element("__doc__");
  LEGODB_RETURN_IF_ERROR(r.EmitInstance(root, root_idx, holder.get()));
  if (holder->children().size() != 1 || !holder->children()[0]->is_element()) {
    return Status::Internal("reconstruction did not yield a single root");
  }
  xml::Document doc;
  doc.root = holder->ReleaseChild(0);
  return doc;
}

}  // namespace legodb::store
