#include "xschema/stats.h"

#include <cctype>
#include <cstdlib>

namespace legodb::xs {

void StatsSet::SetCount(const StatPath& path, int64_t count) {
  stats_[path].count = count;
}

void StatsSet::SetSize(const StatPath& path, double size) {
  stats_[path].size = size;
}

void StatsSet::SetBase(const StatPath& path, int64_t min, int64_t max,
                       int64_t distincts) {
  stats_[path].base = PathStat::Base{min, max, distincts};
}

void StatsSet::SetDistincts(const StatPath& path, int64_t distincts) {
  stats_[path].distincts = distincts;
}

const PathStat* StatsSet::Find(const StatPath& path) const {
  auto it = stats_.find(path);
  return it == stats_.end() ? nullptr : &it->second;
}

std::optional<int64_t> StatsSet::Count(const StatPath& path) const {
  const PathStat* s = Find(path);
  return s ? s->count : std::nullopt;
}

std::optional<double> StatsSet::Size(const StatPath& path) const {
  const PathStat* s = Find(path);
  return s ? s->size : std::nullopt;
}

std::string StatsSet::ToString() const {
  std::string out;
  auto render_path = [](const StatPath& path) {
    std::string p = "[";
    for (size_t i = 0; i < path.size(); ++i) {
      if (i > 0) p += ";";
      p += "\"" + path[i] + "\"";
    }
    return p + "]";
  };
  for (const auto& [path, stat] : stats_) {
    if (stat.count) {
      out += "(" + render_path(path) + ", STcnt(" +
             std::to_string(*stat.count) + "));\n";
    }
    if (stat.size) {
      out += "(" + render_path(path) + ", STsize(" +
             std::to_string(static_cast<int64_t>(*stat.size)) + "));\n";
    }
    if (stat.base) {
      out += "(" + render_path(path) + ", STbase(" +
             std::to_string(stat.base->min) + "," +
             std::to_string(stat.base->max) + "," +
             std::to_string(stat.base->distincts) + "));\n";
    }
  }
  return out;
}

namespace {

// Cursor-based parser for the Appendix-A OCaml-like notation.
class StatsParser {
 public:
  explicit StatsParser(std::string_view input) : input_(input) {}

  StatusOr<StatsSet> Parse() {
    StatsSet stats;
    SkipSpace();
    while (pos_ < input_.size()) {
      LEGODB_RETURN_IF_ERROR(ParseEntry(&stats));
      SkipSpace();
    }
    return stats;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("stats line " + std::to_string(line_) + ": " +
                              msg);
  }

  StatusOr<std::string> ParseQuoted() {
    SkipSpace();
    if (pos_ >= input_.size() || input_[pos_] != '"') {
      return Error("expected quoted string");
    }
    ++pos_;
    size_t start = pos_;
    while (pos_ < input_.size() && input_[pos_] != '"') ++pos_;
    if (pos_ >= input_.size()) return Error("unterminated string");
    std::string s(input_.substr(start, pos_ - start));
    ++pos_;
    return s;
  }

  StatusOr<int64_t> ParseInt() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < input_.size() && (input_[pos_] == '-' || input_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected integer");
    return std::strtoll(std::string(input_.substr(start, pos_ - start)).c_str(),
                        nullptr, 10);
  }

  StatusOr<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected identifier");
    return std::string(input_.substr(start, pos_ - start));
  }

  // (["a";"b"], STcnt(42));
  Status ParseEntry(StatsSet* stats) {
    if (!Consume('(')) return Error("expected '('");
    if (!Consume('[')) return Error("expected '['");
    StatPath path;
    if (!Consume(']')) {
      while (true) {
        LEGODB_ASSIGN_OR_RETURN(std::string step, ParseQuoted());
        path.push_back(std::move(step));
        if (Consume(']')) break;
        if (!Consume(';')) return Error("expected ';' or ']' in path");
      }
    }
    if (!Consume(',')) return Error("expected ',' after path");
    LEGODB_ASSIGN_OR_RETURN(std::string tag, ParseIdent());
    if (!Consume('(')) return Error("expected '(' after " + tag);
    if (tag == "STcnt") {
      LEGODB_ASSIGN_OR_RETURN(int64_t n, ParseInt());
      stats->SetCount(path, n);
    } else if (tag == "STsize") {
      LEGODB_ASSIGN_OR_RETURN(int64_t n, ParseInt());
      stats->SetSize(path, static_cast<double>(n));
    } else if (tag == "STbase") {
      LEGODB_ASSIGN_OR_RETURN(int64_t min, ParseInt());
      if (!Consume(',')) return Error("expected ',' in STbase");
      LEGODB_ASSIGN_OR_RETURN(int64_t max, ParseInt());
      if (!Consume(',')) return Error("expected ',' in STbase");
      LEGODB_ASSIGN_OR_RETURN(int64_t distincts, ParseInt());
      stats->SetBase(path, min, max, distincts);
    } else {
      return Error("unknown statistic '" + tag + "'");
    }
    if (!Consume(')')) return Error("expected ')' closing statistic");
    if (!Consume(')')) return Error("expected ')' closing entry");
    Consume(';');  // trailing ';' is optional
    return Status::OK();
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

StatusOr<StatsSet> ParseStats(std::string_view input) {
  return StatsParser(input).Parse();
}

}  // namespace legodb::xs
