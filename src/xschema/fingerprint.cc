#include "xschema/fingerprint.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/hash.h"

namespace legodb::xs {

using common::HashCombine;
using common::HashDouble;
using common::HashInt;
using common::HashString;
using common::Mix64;

namespace {

uint64_t HashNameClass(const NameClass& name, uint64_t h) {
  h = HashInt(static_cast<int64_t>(name.kind), h);
  return HashCombine(h, HashString(name.name));
}

uint64_t HashNode(const TypePtr& t, uint64_t h) {
  if (!t) return HashInt(-1, h);
  h = HashInt(static_cast<int64_t>(t->kind), h);
  switch (t->kind) {
    case Type::Kind::kEmpty:
      break;
    case Type::Kind::kScalar:
      h = HashInt(static_cast<int64_t>(t->scalar_kind), h);
      h = HashDouble(t->scalar_stats.size, h);
      h = HashInt(t->scalar_stats.min, h);
      h = HashInt(t->scalar_stats.max, h);
      h = HashInt(t->scalar_stats.distincts, h);
      break;
    case Type::Kind::kElement:
    case Type::Kind::kAttribute:
      h = HashNameClass(t->name, h);
      h = HashNode(t->child, h);
      break;
    case Type::Kind::kSequence:
    case Type::Kind::kUnion:
      h = HashInt(static_cast<int64_t>(t->children.size()), h);
      for (const auto& c : t->children) h = HashNode(c, h);
      break;
    case Type::Kind::kRepetition:
      h = HashInt(t->min_occurs, h);
      h = HashInt(t->max_occurs, h);
      h = HashDouble(t->avg_count, h);
      h = HashNode(t->child, h);
      break;
    case Type::Kind::kTypeRef:
      h = HashCombine(h, HashString(t->ref_name));
      h = HashDouble(t->ref_weight, h);
      break;
  }
  return h;
}

}  // namespace

uint64_t FingerprintType(const TypePtr& type) {
  return Mix64(HashNode(type, /*h=*/0x7073636865666d61ull));
}

uint64_t FingerprintSchema(const Schema& schema) {
  std::vector<std::string> names = schema.ReachableFromRoot();
  std::sort(names.begin(), names.end());
  uint64_t h = HashString(schema.root_type());
  for (const auto& name : names) {
    h = HashCombine(h, HashString(name));
    h = HashCombine(h, FingerprintType(schema.Find(name)));
  }
  return Mix64(h);
}

}  // namespace legodb::xs
