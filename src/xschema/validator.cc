#include "xschema/validator.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/str_util.h"

namespace legodb::xs {
namespace {

// A match state: how many content items are consumed and which attributes of
// the enclosing element have been matched so far.
struct State {
  size_t pos;
  std::set<std::string> attrs;

  bool operator<(const State& other) const {
    if (pos != other.pos) return pos < other.pos;
    return attrs < other.attrs;
  }
  bool operator==(const State& other) const {
    return pos == other.pos && attrs == other.attrs;
  }
};

class Matcher {
 public:
  explicit Matcher(const Schema& schema) : schema_(schema) {}

  // Validates `element`'s attributes and content against content type `t`.
  bool ValidateElementContent(const xml::Node& element, const TypePtr& t) {
    std::vector<const xml::Node*> items;
    for (const auto& child : element.children()) items.push_back(child.get());

    std::vector<State> finals =
        Match(t, items, element, {State{0, {}}}, /*depth=*/0);
    for (const State& s : finals) {
      if (s.pos != items.size()) continue;
      // Every attribute present on the element must have been matched.
      bool all_attrs = true;
      for (const auto& [name, value] : element.attributes()) {
        if (!s.attrs.count(name)) {
          all_attrs = false;
          break;
        }
      }
      if (all_attrs) return true;
    }
    return false;
  }

  // True if `element` (as a whole) matches type `t`: t must denote (possibly
  // through refs / unions) an element type whose name class matches and whose
  // content validates.
  bool ValidateWholeElement(const xml::Node& element, TypePtr t, int depth) {
    if (!t || depth > 64) return false;
    switch (t->kind) {
      case Type::Kind::kTypeRef:
        return ValidateWholeElement(element, schema_.Find(t->ref_name),
                                    depth + 1);
      case Type::Kind::kUnion:
        for (const auto& alt : t->children) {
          if (ValidateWholeElement(element, alt, depth + 1)) return true;
        }
        return false;
      case Type::Kind::kElement:
        return t->name.Matches(element.name()) &&
               ValidateElementContent(element, t->child);
      default:
        return false;
    }
  }

 private:
  static void Dedup(std::vector<State>* states) {
    std::sort(states->begin(), states->end());
    states->erase(std::unique(states->begin(), states->end()), states->end());
  }

  // Returns all states reachable from `starts` by matching `t`.
  std::vector<State> Match(const TypePtr& t,
                           const std::vector<const xml::Node*>& items,
                           const xml::Node& parent, std::vector<State> starts,
                           int depth) {
    if (!t || depth > 512) return {};
    std::vector<State> out;
    switch (t->kind) {
      case Type::Kind::kEmpty:
        return starts;
      case Type::Kind::kScalar: {
        for (State& s : starts) {
          // A scalar consumes one text item; String may also match empty
          // content (zero items).
          if (s.pos < items.size() && items[s.pos]->is_text()) {
            const std::string& text = items[s.pos]->text();
            if (t->scalar_kind == ScalarKind::kString ||
                IsInteger(StrTrim(text))) {
              out.push_back(State{s.pos + 1, s.attrs});
            }
          }
          if (t->scalar_kind == ScalarKind::kString) {
            out.push_back(s);  // epsilon: empty string content
          }
        }
        break;
      }
      case Type::Kind::kElement: {
        for (State& s : starts) {
          if (s.pos >= items.size()) continue;
          const xml::Node* item = items[s.pos];
          if (!item->is_element() || !t->name.Matches(item->name())) continue;
          Matcher inner(schema_);
          if (inner.ValidateElementContent(*item, t->child)) {
            out.push_back(State{s.pos + 1, s.attrs});
          }
        }
        break;
      }
      case Type::Kind::kAttribute: {
        const std::string& attr_name = t->name.name;
        const std::string* value = parent.FindAttribute(attr_name);
        if (value == nullptr) break;
        if (t->child && t->child->kind == Type::Kind::kScalar &&
            t->child->scalar_kind == ScalarKind::kInteger &&
            !IsInteger(StrTrim(*value))) {
          break;
        }
        for (State& s : starts) {
          State next = s;
          next.attrs.insert(attr_name);
          out.push_back(std::move(next));
        }
        break;
      }
      case Type::Kind::kSequence: {
        out = std::move(starts);
        for (const auto& item : t->children) {
          out = Match(item, items, parent, std::move(out), depth + 1);
          if (out.empty()) break;
        }
        return out;
      }
      case Type::Kind::kUnion: {
        for (const auto& alt : t->children) {
          std::vector<State> r = Match(alt, items, parent, starts, depth + 1);
          out.insert(out.end(), r.begin(), r.end());
        }
        break;
      }
      case Type::Kind::kRepetition: {
        // Iterative expansion; states that make no progress in an iteration
        // are dropped so unbounded repetition of nullable bodies terminates.
        std::vector<State> current = starts;
        std::vector<State> all;
        if (t->min_occurs == 0) all = starts;
        uint32_t iter = 0;
        uint32_t limit = t->max_occurs == kUnbounded
                             ? static_cast<uint32_t>(items.size()) + 1
                             : t->max_occurs;
        while (iter < limit && !current.empty()) {
          std::vector<State> next =
              Match(t->child, items, parent, current, depth + 1);
          std::vector<State> progressed;
          for (State& s : next) {
            if (std::find(current.begin(), current.end(), s) ==
                current.end()) {
              progressed.push_back(std::move(s));
            }
          }
          ++iter;
          if (iter >= t->min_occurs) {
            all.insert(all.end(), progressed.begin(), progressed.end());
          }
          current = std::move(progressed);
          Dedup(&current);
        }
        out = std::move(all);
        break;
      }
      case Type::Kind::kTypeRef: {
        TypePtr body = schema_.Find(t->ref_name);
        if (!body) break;
        out = Match(body, items, parent, std::move(starts), depth + 1);
        break;
      }
    }
    Dedup(&out);
    return out;
  }

  const Schema& schema_;
};

}  // namespace

Status ValidateElement(const xml::Node& element, const Schema& schema,
                       const std::string& type_name) {
  TypePtr t = schema.Find(type_name);
  if (!t) {
    return Status::NotFound("type '" + type_name + "' not in schema");
  }
  Matcher matcher(schema);
  if (matcher.ValidateWholeElement(element, t, 0)) {
    return Status::OK();
  }
  return Status::InvalidArgument("element <" + element.name() +
                                 "> does not match type '" + type_name + "'");
}

Status ValidateDocument(const xml::Document& doc, const Schema& schema) {
  if (!doc.root) return Status::InvalidArgument("document has no root");
  LEGODB_RETURN_IF_ERROR(schema.Validate());
  return ValidateElement(*doc.root, schema, schema.root_type());
}

}  // namespace legodb::xs
