#ifndef LEGODB_XSCHEMA_SCHEMA_PARSER_H_
#define LEGODB_XSCHEMA_SCHEMA_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xschema/schema.h"

namespace legodb::xs {

// Parses a schema written in the paper's XML Query Algebra type notation:
//
//   type Show =
//     show [ @type[ String ],
//            title[ String<#50,#34798> ],
//            year[ Integer<#4,#1800,#2100,#300> ],
//            Aka{1,10},
//            Review*<#10>,
//            ( Movie | TV ) ]
//   type Aka = aka [ String ]
//   ...
//
// Supported constructs: scalars with optional statistics
// (String<#size[,#distincts]>, Integer<#size[,#min,#max[,#distincts]]>),
// elements `name[ t ]`, wildcard elements `~[ t ]` / `~!a[ t ]` (the token
// TILDE is an alias for `~`), attributes `@name[ t ]`, sequences `t , t`,
// unions `t | t` (lower precedence than `,`), repetitions `t?`, `t*`, `t+`,
// `t{m,n}` with optional `<#count>` occurrence statistics, type references,
// and `()` for empty content. `//` starts a line comment.
//
// The first declared type is the schema root.
StatusOr<Schema> ParseSchema(std::string_view input);

// Parses a single type expression (no `type NAME =` header).
StatusOr<TypePtr> ParseType(std::string_view input);

}  // namespace legodb::xs

#endif  // LEGODB_XSCHEMA_SCHEMA_PARSER_H_
