#ifndef LEGODB_XSCHEMA_SCHEMA_H_
#define LEGODB_XSCHEMA_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "xschema/type.h"

namespace legodb::xs {

// A named collection of type definitions with a designated root type,
// mirroring the paper's `type T = ...` declarations (Appendix B). The first
// defined type is the root unless overridden.
class Schema {
 public:
  Schema() = default;

  // Defines or replaces a named type. The first definition becomes the root.
  void Define(const std::string& name, TypePtr type);
  // Removes a type definition (used when inlining elides a type).
  void Undefine(const std::string& name);

  bool Has(const std::string& name) const { return types_.count(name) > 0; }
  // Returns nullptr if not defined.
  TypePtr Find(const std::string& name) const;
  // Aborts if not defined.
  TypePtr Get(const std::string& name) const;

  const std::string& root_type() const { return root_type_; }
  void set_root_type(std::string name) { root_type_ = std::move(name); }

  // Declaration order (stable across rewrites; new types append).
  const std::vector<std::string>& type_names() const { return type_names_; }

  size_t size() const { return types_.size(); }

  // Generates a type name not yet in use, derived from `base`
  // (e.g. "Review", "Review_2", ...).
  std::string FreshTypeName(const std::string& base) const;

  // All type names referenced (via kTypeRef) from the body of `type`.
  static std::vector<std::string> ReferencedTypes(const TypePtr& type);

  // Parent map: for each type T, the set of types whose bodies reference T.
  std::map<std::string, std::vector<std::string>> ParentMap() const;

  // Types reachable from the root via type references (includes the root).
  std::vector<std::string> ReachableFromRoot() const;

  // Drops definitions not reachable from the root.
  void GarbageCollect();

  // True if `name` participates in a reference cycle (recursive type).
  bool IsRecursive(const std::string& name) const;

  // Verifies every type reference resolves and the root is defined.
  Status Validate() const;

  // Renders all definitions in the paper's notation.
  std::string ToString() const;

 private:
  std::string root_type_;
  std::vector<std::string> type_names_;
  std::map<std::string, TypePtr> types_;
};

}  // namespace legodb::xs

#endif  // LEGODB_XSCHEMA_SCHEMA_H_
