#ifndef LEGODB_XSCHEMA_VALIDATOR_H_
#define LEGODB_XSCHEMA_VALIDATOR_H_

#include "common/status.h"
#include "xml/dom.h"
#include "xschema/schema.h"

namespace legodb::xs {

// Checks that `doc` is valid under `schema` (its root matches the schema's
// root type). Validation implements the tree-regular-expression semantics of
// the XML Query Algebra types: sequences, unions and repetitions match the
// element's child list (with backtracking), attributes must be declared and
// present exactly as typed, Integer content must parse as an integer, and
// wildcard names match per '~' / '~!a'.
//
// Used to demonstrate that schema transformations preserve the set of valid
// documents — the paper's core equivalence claim.
Status ValidateDocument(const xml::Document& doc, const Schema& schema);

// Validates a single element against a named type of the schema.
Status ValidateElement(const xml::Node& element, const Schema& schema,
                       const std::string& type_name);

}  // namespace legodb::xs

#endif  // LEGODB_XSCHEMA_VALIDATOR_H_
