#include "xschema/annotate.h"

#include <cmath>
#include <functional>
#include <optional>
#include <set>

namespace legodb::xs {
namespace {

// The path step an element occupies in the statistics: its literal tag, or
// the Appendix-A pseudo-step "TILDE" for wildcard names.
std::string PathStep(const NameClass& name) {
  return name.kind == NameClass::Kind::kLiteral ? name.name : "TILDE";
}

class Annotator {
 public:
  Annotator(const Schema& in, const StatsSet& stats) : in_(in), stats_(stats) {
    out_ = in;
  }

  Schema Run() {
    // The document root exists exactly once.
    double root_instances = 1;
    AnnotateNamed(in_.root_type(), {}, root_instances);
    return std::move(out_);
  }

 private:
  void AnnotateNamed(const std::string& name, const StatPath& path,
                     double instances) {
    if (!in_.Has(name) || !done_.insert(name).second) return;
    out_.Define(name, Walk(in_.Get(name), path, instances));
  }

  // Statistics path of the first element reachable in `t` at `path`.
  std::optional<StatPath> FirstElementPath(const TypePtr& t,
                                           const StatPath& path, int depth) {
    if (!t || depth > 32) return std::nullopt;
    switch (t->kind) {
      case Type::Kind::kElement: {
        StatPath p = path;
        p.push_back(PathStep(t->name));
        return p;
      }
      case Type::Kind::kTypeRef: {
        TypePtr body = in_.Find(t->ref_name);
        return body ? FirstElementPath(body, path, depth + 1) : std::nullopt;
      }
      case Type::Kind::kSequence:
        return t->children.empty()
                   ? std::nullopt
                   : FirstElementPath(t->children[0], path, depth + 1);
      case Type::Kind::kRepetition:
        return FirstElementPath(t->child, path, depth + 1);
      default:
        return std::nullopt;
    }
  }

  // Absolute occurrence count of the first element reachable in `t` at
  // `path` (used to compute repetition averages).
  std::optional<double> TotalCountOf(const TypePtr& t, const StatPath& path,
                                     int depth = 0) {
    if (!t || depth > 32) return std::nullopt;
    switch (t->kind) {
      case Type::Kind::kElement: {
        StatPath p = path;
        p.push_back(PathStep(t->name));
        auto n = stats_.Count(p);
        if (n) return static_cast<double>(*n);
        return std::nullopt;
      }
      case Type::Kind::kTypeRef: {
        TypePtr body = in_.Find(t->ref_name);
        return body ? TotalCountOf(body, path, depth + 1) : std::nullopt;
      }
      case Type::Kind::kUnion: {
        // Sum the alternatives, but count each first-element path once:
        // distributed partitions (Show_Part1 | Show_Part2) both start with
        // <show> and describe disjoint subsets of the same elements.
        double total = 0;
        bool any = false;
        std::set<StatPath> seen;
        for (const auto& alt : t->children) {
          std::optional<StatPath> p = FirstElementPath(alt, path, depth + 1);
          if (!p || !seen.insert(*p).second) continue;
          if (auto n = stats_.Count(*p)) {
            total += static_cast<double>(*n);
            any = true;
          }
        }
        return any ? std::optional<double>(total) : std::nullopt;
      }
      case Type::Kind::kSequence:
        return t->children.empty()
                   ? std::nullopt
                   : TotalCountOf(t->children[0], path, depth + 1);
      case Type::Kind::kRepetition:
        return TotalCountOf(t->child, path, depth + 1);
      default:
        return std::nullopt;
    }
  }

  TypePtr Walk(const TypePtr& t, const StatPath& path, double instances) {
    switch (t->kind) {
      case Type::Kind::kEmpty:
        return t;
      case Type::Kind::kScalar:
        return AnnotateScalar(t, path, instances);
      case Type::Kind::kElement: {
        StatPath p = path;
        p.push_back(PathStep(t->name));
        double n = static_cast<double>(
            stats_.Count(p).value_or(static_cast<int64_t>(instances)));
        return Type::Element(t->name, Walk(t->child, p, n));
      }
      case Type::Kind::kAttribute: {
        StatPath p = path;
        p.push_back(t->name.name);
        return Type::Attribute(t->name.name, Walk(t->child, p, instances));
      }
      case Type::Kind::kSequence: {
        std::vector<TypePtr> items;
        items.reserve(t->children.size());
        for (const auto& c : t->children) items.push_back(Walk(c, path, instances));
        return Type::Sequence(std::move(items));
      }
      case Type::Kind::kUnion: {
        // Walk each alternative with branch-local instance counts so
        // statistics nested inside a branch are not double-discounted.
        std::vector<double> weights = UnionWeights(t, path);
        std::vector<TypePtr> alts;
        alts.reserve(t->children.size());
        for (size_t i = 0; i < t->children.size(); ++i) {
          alts.push_back(
              Walk(t->children[i], path, instances * weights[i]));
        }
        AttachUnionWeights(t, path, &alts);
        return Type::Union(std::move(alts));
      }
      case Type::Kind::kRepetition: {
        std::optional<double> total = TotalCountOf(t->child, path);
        double avg = 0;
        if (total && instances > 0) avg = *total / instances;
        double child_instances =
            total.value_or(instances * t->ExpectedCount());
        TypePtr child = Walk(t->child, path, child_instances);
        auto rep = Type::Repetition(std::move(child), t->min_occurs,
                                    t->max_occurs, avg);
        return rep;
      }
      case Type::Kind::kTypeRef:
        AnnotateNamed(t->ref_name, path, instances);
        return t;
    }
    return t;
  }

  // Estimates relative weights of union alternatives from statistics. Each
  // alternative's size is the count of its first element; when those are
  // indistinguishable (e.g. all branches start with the same tag, as in a
  // distributed Show), the minimum count among singleton child elements
  // inside the branch discriminates (e.g. box_office vs seasons).
  // Normalized branch weights for a union (even split when statistics
  // cannot discriminate the branches).
  std::vector<double> UnionWeights(const TypePtr& u, const StatPath& path) {
    size_t n = u->children.size();
    std::vector<double> weights(n, 1.0 / static_cast<double>(n));
    std::vector<double> estimates;
    for (const auto& alt : u->children) {
      std::optional<double> est = BranchEstimate(alt, path);
      if (!est || *est <= 0) return weights;
      estimates.push_back(*est);
    }
    double sum = 0;
    for (double e : estimates) sum += e;
    if (sum <= 0) return weights;
    for (size_t i = 0; i < n; ++i) weights[i] = estimates[i] / sum;
    return weights;
  }

  std::optional<double> BranchEstimate(const TypePtr& alt,
                                       const StatPath& path) {
    std::optional<double> inner;
    if (alt->kind == Type::Kind::kTypeRef) {
      inner = InnerSingletonCount(alt, path);
    }
    return inner ? inner : TotalCountOf(alt, path);
  }

  void AttachUnionWeights(const TypePtr& u, const StatPath& path,
                          std::vector<TypePtr>* alts) {
    for (const auto& alt : u->children) {
      if (alt->kind != Type::Kind::kTypeRef) return;
    }
    std::vector<double> weights = UnionWeights(u, path);
    for (size_t i = 0; i < alts->size(); ++i) {
      (*alts)[i] =
          Type::RefWeighted(u->children[i]->ref_name, weights[i]);
    }
  }

  // Minimum occurrence count among the singleton ({1,1}) literal child
  // elements directly inside a referenced type's root element.
  std::optional<double> InnerSingletonCount(const TypePtr& ref,
                                            const StatPath& path) {
    TypePtr body = in_.Find(ref->ref_name);
    if (!body || body->kind != Type::Kind::kElement ||
        body->name.kind != NameClass::Kind::kLiteral) {
      return std::nullopt;
    }
    StatPath subpath = path;
    subpath.push_back(body->name.name);
    std::optional<double> best;
    std::function<void(const TypePtr&)> scan = [&](const TypePtr& t) {
      if (t->kind == Type::Kind::kSequence) {
        for (const auto& c : t->children) scan(c);
        return;
      }
      if (t->kind == Type::Kind::kElement) {
        StatPath p = subpath;
        p.push_back(PathStep(t->name));
        if (auto n = stats_.Count(p)) {
          double v = static_cast<double>(*n);
          if (!best || v < *best) best = v;
        }
      }
    };
    scan(body->child);
    return best;
  }

  TypePtr AnnotateScalar(const TypePtr& t, const StatPath& path,
                         double instances) {
    const PathStat* ps = stats_.Find(path);
    ScalarStats s = t->scalar_stats;
    if (ps) {
      if (ps->size) s.size = *ps->size;
      if (ps->base) {
        s.min = ps->base->min;
        s.max = ps->base->max;
        s.distincts = ps->base->distincts;
      } else if (ps->distincts) {
        s.distincts = *ps->distincts;
      }
    }
    if (s.distincts == 0) {
      // No distinct-count statistic: assume all occurrences distinct.
      s.distincts = std::max<int64_t>(1, static_cast<int64_t>(instances));
    }
    if (t->scalar_kind == ScalarKind::kInteger) s.size = 4;
    return Type::Scalar(t->scalar_kind, s);
  }

  const Schema& in_;
  const StatsSet& stats_;
  Schema out_;
  std::set<std::string> done_;
};

}  // namespace

Schema AnnotateSchema(const Schema& schema, const StatsSet& stats) {
  return Annotator(schema, stats).Run();
}

}  // namespace legodb::xs
