#ifndef LEGODB_XSCHEMA_ANNOTATE_H_
#define LEGODB_XSCHEMA_ANNOTATE_H_

#include "xschema/schema.h"
#include "xschema/stats.h"

namespace legodb::xs {

// Produces a copy of `schema` with statistics woven into the type
// expressions (the p-schema annotation step of Section 3.1):
//  - scalar occurrences receive size / min / max / distinct statistics from
//    the path they sit at;
//  - repetitions receive the *<#count> average-occurrences annotation,
//    computed as STcnt(child path) / STcnt(parent path).
//
// Scalars whose path has no statistics keep defaults. String scalars with no
// distinct count are assumed all-distinct (one distinct value per occurrence,
// matching the paper's Show sample where title gets #34798 distincts). A type
// referenced from several paths is annotated at its first (document-order)
// occurrence.
Schema AnnotateSchema(const Schema& schema, const StatsSet& stats);

}  // namespace legodb::xs

#endif  // LEGODB_XSCHEMA_ANNOTATE_H_
