#ifndef LEGODB_XSCHEMA_TYPE_H_
#define LEGODB_XSCHEMA_TYPE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace legodb::xs {

// Scalar data types of the XML Query Algebra subset the paper uses.
enum class ScalarKind { kString, kInteger };

// Statistics attached to scalar occurrences, per the paper's p-schema
// annotations: String<#size,#distincts> and
// Integer<#size,#min,#max,#distincts>, mirroring Appendix A's STsize/STbase.
struct ScalarStats {
  // Average stored size in bytes (string length; 4/8 for integers).
  double size = 0;
  // Value range, meaningful for integers (STbase min/max).
  int64_t min = 0;
  int64_t max = 0;
  // Number of distinct values; 0 means unknown.
  int64_t distincts = 0;

  bool operator==(const ScalarStats&) const = default;
};

// An element name pattern: a literal tag, the wildcard '~' (any name), or
// '~!a' (any name except `a`), following the paper's Section 4.1 notation.
struct NameClass {
  enum class Kind { kLiteral, kAny, kAnyExcept };

  static NameClass Literal(std::string name) {
    return NameClass{Kind::kLiteral, std::move(name)};
  }
  static NameClass Any() { return NameClass{Kind::kAny, ""}; }
  static NameClass AnyExcept(std::string name) {
    return NameClass{Kind::kAnyExcept, std::move(name)};
  }

  bool is_wildcard() const { return kind != Kind::kLiteral; }
  bool Matches(const std::string& tag) const;
  // Renders as the paper writes it: "show", "~", "~!nyt".
  std::string ToString() const;

  Kind kind = Kind::kLiteral;
  std::string name;

  bool operator==(const NameClass&) const = default;
};

struct Type;
// Types are immutable and shared: schema rewrites rebuild only the path from
// the root of a type expression to the modified node, sharing the rest.
using TypePtr = std::shared_ptr<const Type>;

// Sentinel for unbounded repetition ({n,*}).
inline constexpr uint32_t kUnbounded = std::numeric_limits<uint32_t>::max();

// A type expression in the XML Query Algebra notation of the paper
// (Section 2 / Appendix B):
//
//   t ::= ()                          empty content
//       | String | Integer            scalars (with statistics)
//       | name [ t ]                  element (name may be a wildcard)
//       | @name [ t ]                 attribute
//       | t , t                       sequence
//       | t | t                       union
//       | t {m,n}                     repetition (?, *, + are sugar)
//       | T                           reference to a named type
struct Type {
  enum class Kind {
    kEmpty,
    kScalar,
    kElement,
    kAttribute,
    kSequence,
    kUnion,
    kRepetition,
    kTypeRef,
  };

  // --- Factories (the only way to build types). ---
  static TypePtr Empty();
  static TypePtr Scalar(ScalarKind kind, ScalarStats stats = {});
  static TypePtr String(ScalarStats stats = {});
  static TypePtr Integer(ScalarStats stats = {});
  static TypePtr Element(NameClass name, TypePtr content);
  static TypePtr Element(const std::string& name, TypePtr content);
  static TypePtr Attribute(std::string name, TypePtr content);
  // Flattens nested sequences and elides empties; returns Empty() for zero
  // items and the single item for one.
  static TypePtr Sequence(std::vector<TypePtr> items);
  // Flattens nested unions; returns the single alternative for one.
  static TypePtr Union(std::vector<TypePtr> alternatives);
  // `avg_count` is the paper's *<#count> annotation: average number of
  // occurrences per parent instance (0 = unknown, estimated from bounds).
  static TypePtr Repetition(TypePtr item, uint32_t min, uint32_t max,
                            double avg_count = 0);
  static TypePtr Optional(TypePtr item);  // {0,1}
  static TypePtr Ref(std::string type_name);
  // A reference carrying a relative branch weight (used when the reference
  // is a union alternative; weights derive from path statistics).
  static TypePtr RefWeighted(std::string type_name, double weight);

  Kind kind = Kind::kEmpty;

  // kScalar
  ScalarKind scalar_kind = ScalarKind::kString;
  ScalarStats scalar_stats;

  // kElement (name) / kAttribute (name.name is the attribute name)
  NameClass name;

  // kElement, kAttribute: content; kRepetition: repeated item.
  TypePtr child;

  // kSequence (items), kUnion (alternatives)
  std::vector<TypePtr> children;

  // kRepetition
  uint32_t min_occurs = 1;
  uint32_t max_occurs = 1;
  double avg_count = 0;

  // kTypeRef
  std::string ref_name;
  // Relative branch weight when this ref is a union alternative (0 =
  // unknown; the mapping then splits branches evenly).
  double ref_weight = 0;

  // --- Queries ---
  bool is_optional_rep() const {
    return kind == Kind::kRepetition && min_occurs == 0 && max_occurs == 1;
  }
  // Expected number of occurrences of a repetition per parent: the stats
  // annotation when present, else the midpoint of the bounds (unbounded
  // repetitions default to kDefaultUnboundedCount).
  double ExpectedCount() const;

  // Renders in the paper's notation, e.g. "show [ @type[ String ], Aka{1,10} ]".
  std::string ToString() const;

  static constexpr double kDefaultUnboundedCount = 10.0;
};

// Deep structural equality (statistics included).
bool TypeEquals(const TypePtr& a, const TypePtr& b);

// Deep structural equality ignoring statistics annotations.
bool TypeEqualsIgnoringStats(const TypePtr& a, const TypePtr& b);

}  // namespace legodb::xs

#endif  // LEGODB_XSCHEMA_TYPE_H_
