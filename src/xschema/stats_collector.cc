#include "xschema/stats_collector.h"

#include <algorithm>
#include <set>

#include "common/str_util.h"

namespace legodb::xs {

void StatsCollector::AddDocument(const xml::Document& doc) {
  if (doc.root) AddTree(*doc.root);
}

void StatsCollector::AddTree(const xml::Node& root) {
  StatPath path;
  Visit(root, &path);
}

void StatsCollector::Record(const StatPath& path, const std::string& text,
                            bool has_text) {
  Accumulator& acc = acc_[path];
  ++acc.count;
  if (!has_text) return;
  ++acc.text_occurrences;
  acc.total_size += static_cast<double>(text.size());
  acc.samples.push_back(text);
  if (IsInteger(StrTrim(text))) {
    int64_t v = std::strtoll(std::string(StrTrim(text)).c_str(), nullptr, 10);
    if (acc.text_occurrences == 1) {
      acc.min = acc.max = v;
    } else {
      acc.min = std::min(acc.min, v);
      acc.max = std::max(acc.max, v);
    }
  } else {
    acc.all_integer = false;
  }
}

void StatsCollector::Visit(const xml::Node& node, StatPath* path) {
  if (!node.is_element()) return;
  path->push_back(node.name());

  // Only direct text of this element counts toward its content size; child
  // elements contribute to their own paths.
  std::string direct_text;
  bool has_text = false;
  for (const auto& child : node.children()) {
    if (child->is_text()) {
      direct_text += child->text();
      has_text = true;
    }
  }
  Record(*path, direct_text, has_text);

  // The wildcard aggregate: the same occurrence, recorded under TILDE so a
  // `~[...]` schema position can be annotated without knowing tag names.
  if (path->size() >= 2) {
    std::string actual = path->back();
    path->back() = "TILDE";
    Record(*path, direct_text, has_text);
    path->back() = std::move(actual);
  }

  for (const auto& [attr_name, attr_value] : node.attributes()) {
    path->push_back(attr_name);
    Record(*path, attr_value, /*has_text=*/true);
    path->pop_back();
  }

  for (const auto& child : node.children()) {
    Visit(*child, path);
  }
  path->pop_back();
}

StatsSet StatsCollector::Finish() const {
  StatsSet stats;
  for (const auto& [path, acc] : acc_) {
    stats.SetCount(path, acc.count);
    if (acc.text_occurrences == 0) continue;
    stats.SetSize(path, acc.total_size / acc.text_occurrences);
    std::set<std::string> distinct(acc.samples.begin(), acc.samples.end());
    if (acc.all_integer) {
      stats.SetBase(path, acc.min, acc.max,
                    static_cast<int64_t>(distinct.size()));
    } else {
      stats.SetDistincts(path, static_cast<int64_t>(distinct.size()));
    }
  }
  return stats;
}

}  // namespace legodb::xs
