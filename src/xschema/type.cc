#include "xschema/type.h"

#include <algorithm>

namespace legodb::xs {

bool NameClass::Matches(const std::string& tag) const {
  switch (kind) {
    case Kind::kLiteral:
      return tag == name;
    case Kind::kAny:
      return true;
    case Kind::kAnyExcept:
      return tag != name;
  }
  return false;
}

std::string NameClass::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return name;
    case Kind::kAny:
      return "~";
    case Kind::kAnyExcept:
      return "~!" + name;
  }
  return "";
}

namespace {
std::shared_ptr<Type> NewType(Type::Kind kind) {
  auto t = std::make_shared<Type>();
  t->kind = kind;
  return t;
}
}  // namespace

TypePtr Type::Empty() {
  static const TypePtr kEmptyType = NewType(Kind::kEmpty);
  return kEmptyType;
}

TypePtr Type::Scalar(ScalarKind kind, ScalarStats stats) {
  auto t = NewType(Kind::kScalar);
  t->scalar_kind = kind;
  if (stats.size == 0) {
    stats.size = kind == ScalarKind::kInteger ? 4 : 20;
  }
  t->scalar_stats = stats;
  return t;
}

TypePtr Type::String(ScalarStats stats) {
  return Scalar(ScalarKind::kString, stats);
}

TypePtr Type::Integer(ScalarStats stats) {
  return Scalar(ScalarKind::kInteger, stats);
}

TypePtr Type::Element(NameClass name, TypePtr content) {
  auto t = NewType(Kind::kElement);
  t->name = std::move(name);
  t->child = content ? std::move(content) : Empty();
  return t;
}

TypePtr Type::Element(const std::string& name, TypePtr content) {
  return Element(NameClass::Literal(name), std::move(content));
}

TypePtr Type::Attribute(std::string name, TypePtr content) {
  auto t = NewType(Kind::kAttribute);
  t->name = NameClass::Literal(std::move(name));
  t->child = content ? std::move(content) : String();
  return t;
}

TypePtr Type::Sequence(std::vector<TypePtr> items) {
  std::vector<TypePtr> flat;
  for (auto& item : items) {
    if (!item || item->kind == Kind::kEmpty) continue;
    if (item->kind == Kind::kSequence) {
      flat.insert(flat.end(), item->children.begin(), item->children.end());
    } else {
      flat.push_back(std::move(item));
    }
  }
  if (flat.empty()) return Empty();
  if (flat.size() == 1) return flat[0];
  auto t = NewType(Kind::kSequence);
  t->children = std::move(flat);
  return t;
}

TypePtr Type::Union(std::vector<TypePtr> alternatives) {
  std::vector<TypePtr> flat;
  for (auto& alt : alternatives) {
    if (!alt) continue;
    if (alt->kind == Kind::kUnion) {
      flat.insert(flat.end(), alt->children.begin(), alt->children.end());
    } else {
      flat.push_back(std::move(alt));
    }
  }
  if (flat.empty()) return Empty();
  if (flat.size() == 1) return flat[0];
  auto t = NewType(Kind::kUnion);
  t->children = std::move(flat);
  return t;
}

TypePtr Type::Repetition(TypePtr item, uint32_t min, uint32_t max,
                         double avg_count) {
  if (min == 1 && max == 1) return item;
  auto t = NewType(Kind::kRepetition);
  t->child = std::move(item);
  t->min_occurs = min;
  t->max_occurs = max;
  t->avg_count = avg_count;
  return t;
}

TypePtr Type::Optional(TypePtr item) {
  return Repetition(std::move(item), 0, 1);
}

TypePtr Type::Ref(std::string type_name) {
  auto t = NewType(Kind::kTypeRef);
  t->ref_name = std::move(type_name);
  return t;
}

TypePtr Type::RefWeighted(std::string type_name, double weight) {
  auto t = NewType(Kind::kTypeRef);
  t->ref_name = std::move(type_name);
  t->ref_weight = weight;
  return t;
}

double Type::ExpectedCount() const {
  if (kind != Kind::kRepetition) return 1;
  if (avg_count > 0) return avg_count;
  if (max_occurs == kUnbounded) {
    return std::max<double>(min_occurs, kDefaultUnboundedCount);
  }
  return (static_cast<double>(min_occurs) + max_occurs) / 2.0;
}

namespace {

std::string ScalarToString(const Type& t) {
  std::string out =
      t.scalar_kind == ScalarKind::kInteger ? "Integer" : "String";
  const ScalarStats& s = t.scalar_stats;
  if (s.distincts > 0 || s.min != 0 || s.max != 0) {
    out += "<#" + std::to_string(static_cast<int64_t>(s.size));
    if (t.scalar_kind == ScalarKind::kInteger) {
      out += ",#" + std::to_string(s.min) + ",#" + std::to_string(s.max);
    }
    out += ",#" + std::to_string(s.distincts) + ">";
  }
  return out;
}

std::string OccursToString(const Type& t) {
  std::string suffix;
  if (t.min_occurs == 0 && t.max_occurs == 1) {
    suffix = "?";
  } else if (t.min_occurs == 0 && t.max_occurs == kUnbounded) {
    suffix = "*";
  } else if (t.min_occurs == 1 && t.max_occurs == kUnbounded) {
    suffix = "+";
  } else {
    suffix = "{" + std::to_string(t.min_occurs) + "," +
             (t.max_occurs == kUnbounded ? std::string("*")
                                         : std::to_string(t.max_occurs)) +
             "}";
  }
  if (t.avg_count > 0) {
    suffix += "<#" + std::to_string(static_cast<int64_t>(t.avg_count)) + ">";
  }
  return suffix;
}

// `parenthesize_seq` guards sequence children inside unions/repetitions.
std::string ToStringImpl(const Type& t, bool parenthesize) {
  switch (t.kind) {
    case Type::Kind::kEmpty:
      return "()";
    case Type::Kind::kScalar:
      return ScalarToString(t);
    case Type::Kind::kElement:
      return t.name.ToString() + "[ " + ToStringImpl(*t.child, false) + " ]";
    case Type::Kind::kAttribute:
      return "@" + t.name.ToString() + "[ " + ToStringImpl(*t.child, false) +
             " ]";
    case Type::Kind::kSequence: {
      std::string out;
      for (size_t i = 0; i < t.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += ToStringImpl(*t.children[i], true);
      }
      return parenthesize ? "(" + out + ")" : out;
    }
    case Type::Kind::kUnion: {
      std::string out;
      for (size_t i = 0; i < t.children.size(); ++i) {
        if (i > 0) out += " | ";
        out += ToStringImpl(*t.children[i], true);
      }
      return "(" + out + ")";
    }
    case Type::Kind::kRepetition: {
      std::string inner = ToStringImpl(*t.child, true);
      return inner + OccursToString(t);
    }
    case Type::Kind::kTypeRef:
      return t.ref_name;
  }
  return "?";
}

bool EqualsImpl(const TypePtr& a, const TypePtr& b, bool with_stats) {
  if (a == b) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind) return false;
  switch (a->kind) {
    case Type::Kind::kEmpty:
      return true;
    case Type::Kind::kScalar:
      if (a->scalar_kind != b->scalar_kind) return false;
      return !with_stats || a->scalar_stats == b->scalar_stats;
    case Type::Kind::kElement:
    case Type::Kind::kAttribute:
      return a->name == b->name && EqualsImpl(a->child, b->child, with_stats);
    case Type::Kind::kSequence:
    case Type::Kind::kUnion: {
      if (a->children.size() != b->children.size()) return false;
      for (size_t i = 0; i < a->children.size(); ++i) {
        if (!EqualsImpl(a->children[i], b->children[i], with_stats)) {
          return false;
        }
      }
      return true;
    }
    case Type::Kind::kRepetition:
      if (a->min_occurs != b->min_occurs || a->max_occurs != b->max_occurs) {
        return false;
      }
      if (with_stats && a->avg_count != b->avg_count) return false;
      return EqualsImpl(a->child, b->child, with_stats);
    case Type::Kind::kTypeRef:
      if (a->ref_name != b->ref_name) return false;
      return !with_stats || a->ref_weight == b->ref_weight;
  }
  return false;
}

}  // namespace

std::string Type::ToString() const { return ToStringImpl(*this, false); }

bool TypeEquals(const TypePtr& a, const TypePtr& b) {
  return EqualsImpl(a, b, /*with_stats=*/true);
}

bool TypeEqualsIgnoringStats(const TypePtr& a, const TypePtr& b) {
  return EqualsImpl(a, b, /*with_stats=*/false);
}

}  // namespace legodb::xs
