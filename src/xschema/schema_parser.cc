#include "xschema/schema_parser.h"

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

namespace legodb::xs {
namespace {

struct Token {
  enum class Kind {
    kIdent,
    kNumber,
    kPunct,  // single characters: @ [ ] ( ) , | * + ? { } < > # = ! ~ -
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) { Advance(); }

  const Token& current() const { return current_; }

  void Advance() {
    SkipSpaceAndComments();
    current_.line = line_;
    if (pos_ >= input_.size()) {
      current_.kind = Token::Kind::kEnd;
      current_.text.clear();
      return;
    }
    char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = Token::Kind::kIdent;
      current_.text = std::string(input_.substr(start, pos_ - start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
      current_.kind = Token::Kind::kNumber;
      current_.text = std::string(input_.substr(start, pos_ - start));
      return;
    }
    current_.kind = Token::Kind::kPunct;
    current_.text = std::string(1, c);
    ++pos_;
  }

 private:
  void SkipSpaceAndComments() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < input_.size() &&
                 input_[pos_ + 1] == '/') {
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view input) : lex_(input) {}

  StatusOr<Schema> ParseSchemaDecls() {
    Schema schema;
    while (!AtEnd()) {
      if (!IsIdent("type")) return Error("expected 'type' declaration");
      lex_.Advance();
      if (lex_.current().kind != Token::Kind::kIdent) {
        return Error("expected type name");
      }
      std::string name = lex_.current().text;
      lex_.Advance();
      if (!ConsumePunct("=")) return Error("expected '=' after type name");
      auto type = ParseTypeExpr();
      if (!type.ok()) return type.status();
      if (schema.Has(name)) {
        return Error("duplicate definition of type '" + name + "'");
      }
      schema.Define(name, std::move(type).value());
    }
    if (schema.size() == 0) return Error("empty schema");
    return schema;
  }

  StatusOr<TypePtr> ParseSingleType() {
    auto type = ParseTypeExpr();
    if (!type.ok()) return type.status();
    if (!AtEnd()) return Error("trailing input after type expression");
    return type;
  }

 private:
  bool AtEnd() const { return lex_.current().kind == Token::Kind::kEnd; }
  bool IsIdent(std::string_view text) const {
    return lex_.current().kind == Token::Kind::kIdent &&
           lex_.current().text == text;
  }
  bool IsPunct(std::string_view text) const {
    return lex_.current().kind == Token::Kind::kPunct &&
           lex_.current().text == text;
  }
  bool ConsumePunct(std::string_view text) {
    if (!IsPunct(text)) return false;
    lex_.Advance();
    return true;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError("schema line " +
                              std::to_string(lex_.current().line) + ": " +
                              msg);
  }

  // type := seq ('|' seq)*
  StatusOr<TypePtr> ParseTypeExpr() {
    auto first = ParseSeq();
    if (!first.ok()) return first.status();
    std::vector<TypePtr> alts;
    alts.push_back(std::move(first).value());
    while (ConsumePunct("|")) {
      auto next = ParseSeq();
      if (!next.ok()) return next.status();
      alts.push_back(std::move(next).value());
    }
    return Type::Union(std::move(alts));
  }

  // seq := item (',' item)*
  StatusOr<TypePtr> ParseSeq() {
    auto first = ParseItem();
    if (!first.ok()) return first.status();
    std::vector<TypePtr> items;
    items.push_back(std::move(first).value());
    while (ConsumePunct(",")) {
      auto next = ParseItem();
      if (!next.ok()) return next.status();
      items.push_back(std::move(next).value());
    }
    return Type::Sequence(std::move(items));
  }

  // item := primary occurs*
  StatusOr<TypePtr> ParseItem() {
    auto primary = ParsePrimary();
    if (!primary.ok()) return primary.status();
    TypePtr t = std::move(primary).value();
    while (true) {
      if (IsPunct("*") || IsPunct("+") || IsPunct("?") || IsPunct("{")) {
        auto rep = ParseOccurs(std::move(t));
        if (!rep.ok()) return rep.status();
        t = std::move(rep).value();
      } else {
        return t;
      }
    }
  }

  StatusOr<TypePtr> ParseOccurs(TypePtr inner) {
    uint32_t min = 1, max = 1;
    if (ConsumePunct("*")) {
      min = 0;
      max = kUnbounded;
    } else if (ConsumePunct("+")) {
      min = 1;
      max = kUnbounded;
    } else if (ConsumePunct("?")) {
      min = 0;
      max = 1;
    } else if (ConsumePunct("{")) {
      auto lo = ParseNumber();
      if (!lo.ok()) return lo.status();
      min = static_cast<uint32_t>(lo.value());
      if (!ConsumePunct(",")) return Error("expected ',' in {m,n}");
      if (ConsumePunct("*")) {
        max = kUnbounded;
      } else {
        auto hi = ParseNumber();
        if (!hi.ok()) return hi.status();
        max = static_cast<uint32_t>(hi.value());
        if (max < min) return Error("repetition bounds out of order");
      }
      if (!ConsumePunct("}")) return Error("expected '}'");
    } else {
      return Error("expected occurrence indicator");
    }
    double avg_count = 0;
    if (IsPunct("<")) {
      auto stats = ParseStatNumbers();
      if (!stats.ok()) return stats.status();
      if (stats.value().size() != 1) {
        return Error("occurrence statistics take a single <#count>");
      }
      avg_count = static_cast<double>(stats.value()[0]);
    }
    return Type::Repetition(std::move(inner), min, max, avg_count);
  }

  StatusOr<int64_t> ParseNumber() {
    bool negative = ConsumePunct("-");
    if (lex_.current().kind != Token::Kind::kNumber) {
      return Error("expected number");
    }
    int64_t value = std::strtoll(lex_.current().text.c_str(), nullptr, 10);
    lex_.Advance();
    return negative ? -value : value;
  }

  // stats := '<' '#'NUM (',' '#'NUM)* '>'
  StatusOr<std::vector<int64_t>> ParseStatNumbers() {
    if (!ConsumePunct("<")) return Error("expected '<'");
    std::vector<int64_t> numbers;
    do {
      if (!ConsumePunct("#")) return Error("expected '#' in statistics");
      auto n = ParseNumber();
      if (!n.ok()) return n.status();
      numbers.push_back(n.value());
    } while (ConsumePunct(","));
    if (!ConsumePunct(">")) return Error("expected '>'");
    return numbers;
  }

  StatusOr<TypePtr> ParseScalar(ScalarKind kind) {
    ScalarStats stats;
    if (IsPunct("<")) {
      auto numbers = ParseStatNumbers();
      if (!numbers.ok()) return numbers.status();
      const auto& ns = numbers.value();
      if (kind == ScalarKind::kString) {
        // String<#size> or String<#size,#distincts>
        if (ns.size() > 2) return Error("too many String statistics");
        if (!ns.empty()) stats.size = static_cast<double>(ns[0]);
        if (ns.size() > 1) stats.distincts = ns[1];
      } else {
        // Integer<#size>, Integer<#size,#min,#max>,
        // or Integer<#size,#min,#max,#distincts>
        if (ns.size() > 4) return Error("too many Integer statistics");
        if (!ns.empty()) stats.size = static_cast<double>(ns[0]);
        if (ns.size() >= 3) {
          stats.min = ns[1];
          stats.max = ns[2];
        }
        if (ns.size() == 4) stats.distincts = ns[3];
      }
    }
    return Type::Scalar(kind, stats);
  }

  // Element content: '[' type? ']'.
  StatusOr<TypePtr> ParseBracketContent() {
    if (!ConsumePunct("[")) return Error("expected '['");
    if (ConsumePunct("]")) return Type::Empty();
    auto content = ParseTypeExpr();
    if (!content.ok()) return content.status();
    if (!ConsumePunct("]")) return Error("expected ']'");
    return content;
  }

  StatusOr<TypePtr> ParsePrimary() {
    // Parenthesized group or empty content.
    if (ConsumePunct("(")) {
      if (ConsumePunct(")")) return Type::Empty();
      auto inner = ParseTypeExpr();
      if (!inner.ok()) return inner.status();
      if (!ConsumePunct(")")) return Error("expected ')'");
      return inner;
    }
    // Attribute.
    if (ConsumePunct("@")) {
      if (lex_.current().kind != Token::Kind::kIdent) {
        return Error("expected attribute name after '@'");
      }
      std::string name = lex_.current().text;
      lex_.Advance();
      auto content = ParseBracketContent();
      if (!content.ok()) return content.status();
      return Type::Attribute(std::move(name), std::move(content).value());
    }
    // Wildcard element: ~[t] or ~!a[t].
    if (ConsumePunct("~")) {
      return ParseWildcardElement();
    }
    if (lex_.current().kind == Token::Kind::kIdent) {
      std::string ident = lex_.current().text;
      if (ident == "String") {
        lex_.Advance();
        return ParseScalar(ScalarKind::kString);
      }
      if (ident == "Integer") {
        lex_.Advance();
        return ParseScalar(ScalarKind::kInteger);
      }
      if (ident == "TILDE") {  // Appendix-B spelling of '~'.
        lex_.Advance();
        return ParseWildcardElement();
      }
      lex_.Advance();
      // Identifier followed by '[' is an element; otherwise a type ref.
      if (IsPunct("[")) {
        auto content = ParseBracketContent();
        if (!content.ok()) return content.status();
        return Type::Element(ident, std::move(content).value());
      }
      return Type::Ref(std::move(ident));
    }
    return Error("unexpected token '" + lex_.current().text + "'");
  }

  // Called after consuming '~' / 'TILDE'.
  StatusOr<TypePtr> ParseWildcardElement() {
    NameClass nc = NameClass::Any();
    if (ConsumePunct("!")) {
      if (lex_.current().kind != Token::Kind::kIdent) {
        return Error("expected name after '~!'");
      }
      nc = NameClass::AnyExcept(lex_.current().text);
      lex_.Advance();
    }
    auto content = ParseBracketContent();
    if (!content.ok()) return content.status();
    return Type::Element(nc, std::move(content).value());
  }

  Lexer lex_;
};

}  // namespace

StatusOr<Schema> ParseSchema(std::string_view input) {
  return Parser(input).ParseSchemaDecls();
}

StatusOr<TypePtr> ParseType(std::string_view input) {
  return Parser(input).ParseSingleType();
}

}  // namespace legodb::xs
