#ifndef LEGODB_XSCHEMA_STATS_H_
#define LEGODB_XSCHEMA_STATS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace legodb::xs {

// A path through the document from the root, e.g. {"imdb","show","title"}.
// Attribute names appear as plain steps; wildcard positions use "TILDE",
// both per the paper's Appendix A.
using StatPath = std::vector<std::string>;

// Statistics for one path, combining the paper's three annotations:
//   STcnt(n)            total number of occurrences of the path
//   STsize(s)           average content size in bytes
//   STbase(min,max,d)   integer value range and distinct count
struct PathStat {
  std::optional<int64_t> count;
  std::optional<double> size;
  struct Base {
    int64_t min = 0;
    int64_t max = 0;
    int64_t distincts = 0;
    bool operator==(const Base&) const = default;
  };
  std::optional<Base> base;
  // Distinct string values observed (collector only; Appendix A has no
  // string-distinct annotation).
  std::optional<int64_t> distincts;
};

// XML data statistics keyed by path — the `xStats` input of Algorithm 4.1.
class StatsSet {
 public:
  StatsSet() = default;

  void SetCount(const StatPath& path, int64_t count);
  void SetSize(const StatPath& path, double size);
  void SetBase(const StatPath& path, int64_t min, int64_t max,
               int64_t distincts);
  void SetDistincts(const StatPath& path, int64_t distincts);

  // Returns nullptr if the path has no recorded statistics.
  const PathStat* Find(const StatPath& path) const;

  std::optional<int64_t> Count(const StatPath& path) const;
  std::optional<double> Size(const StatPath& path) const;

  size_t size() const { return stats_.size(); }
  const std::map<StatPath, PathStat>& entries() const { return stats_; }

  // Renders in the Appendix-A notation:
  //   (["imdb";"show"], STcnt(34798));
  std::string ToString() const;

 private:
  std::map<StatPath, PathStat> stats_;
};

// Parses the Appendix-A statistics notation. Multiple entries for the same
// path merge (e.g. an STcnt line and an STsize line).
StatusOr<StatsSet> ParseStats(std::string_view input);

}  // namespace legodb::xs

#endif  // LEGODB_XSCHEMA_STATS_H_
