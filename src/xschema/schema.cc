#include "xschema/schema.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/check.h"

namespace legodb::xs {

void Schema::Define(const std::string& name, TypePtr type) {
  LEGODB_CHECK(type != nullptr, "Schema::Define: null type");
  if (!types_.count(name)) type_names_.push_back(name);
  types_[name] = std::move(type);
  if (root_type_.empty()) root_type_ = name;
}

void Schema::Undefine(const std::string& name) {
  types_.erase(name);
  type_names_.erase(std::remove(type_names_.begin(), type_names_.end(), name),
                    type_names_.end());
}

TypePtr Schema::Find(const std::string& name) const {
  auto it = types_.find(name);
  return it == types_.end() ? nullptr : it->second;
}

TypePtr Schema::Get(const std::string& name) const {
  TypePtr t = Find(name);
  LEGODB_CHECK(t != nullptr, "Schema::Get: undefined type");
  return t;
}

std::string Schema::FreshTypeName(const std::string& base) const {
  if (!Has(base)) return base;
  for (int i = 2;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (!Has(candidate)) return candidate;
  }
}

std::vector<std::string> Schema::ReferencedTypes(const TypePtr& type) {
  std::vector<std::string> refs;
  std::function<void(const TypePtr&)> walk = [&](const TypePtr& t) {
    if (!t) return;
    if (t->kind == Type::Kind::kTypeRef) refs.push_back(t->ref_name);
    if (t->child) walk(t->child);
    for (const auto& c : t->children) walk(c);
  };
  walk(type);
  return refs;
}

std::map<std::string, std::vector<std::string>> Schema::ParentMap() const {
  std::map<std::string, std::vector<std::string>> parents;
  for (const auto& name : type_names_) {
    std::set<std::string> seen;
    for (const auto& ref : ReferencedTypes(Get(name))) {
      if (seen.insert(ref).second) parents[ref].push_back(name);
    }
  }
  return parents;
}

std::vector<std::string> Schema::ReachableFromRoot() const {
  std::vector<std::string> order;
  std::set<std::string> visited;
  std::function<void(const std::string&)> visit = [&](const std::string& n) {
    if (!visited.insert(n).second) return;
    if (!Has(n)) return;
    order.push_back(n);
    for (const auto& ref : ReferencedTypes(Get(n))) visit(ref);
  };
  if (!root_type_.empty()) visit(root_type_);
  return order;
}

void Schema::GarbageCollect() {
  auto reachable = ReachableFromRoot();
  std::set<std::string> keep(reachable.begin(), reachable.end());
  std::vector<std::string> to_remove;
  for (const auto& name : type_names_) {
    if (!keep.count(name)) to_remove.push_back(name);
  }
  for (const auto& name : to_remove) Undefine(name);
}

bool Schema::IsRecursive(const std::string& name) const {
  // DFS from `name`; recursive iff we can get back to `name`.
  std::set<std::string> visited;
  std::function<bool(const std::string&)> visit =
      [&](const std::string& n) -> bool {
    if (!Has(n)) return false;
    for (const auto& ref : ReferencedTypes(Get(n))) {
      if (ref == name) return true;
      if (visited.insert(ref).second && visit(ref)) return true;
    }
    return false;
  };
  return visit(name);
}

Status Schema::Validate() const {
  if (root_type_.empty()) {
    return Status::InvalidArgument("schema has no root type");
  }
  if (!Has(root_type_)) {
    return Status::InvalidArgument("root type '" + root_type_ +
                                   "' is not defined");
  }
  for (const auto& name : type_names_) {
    for (const auto& ref : ReferencedTypes(Get(name))) {
      if (!Has(ref)) {
        return Status::InvalidArgument("type '" + name +
                                       "' references undefined type '" + ref +
                                       "'");
      }
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  for (const auto& name : type_names_) {
    out += "type " + name + " = " + Get(name)->ToString() + "\n";
  }
  return out;
}

}  // namespace legodb::xs
