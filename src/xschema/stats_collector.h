#ifndef LEGODB_XSCHEMA_STATS_COLLECTOR_H_
#define LEGODB_XSCHEMA_STATS_COLLECTOR_H_

#include "xml/dom.h"
#include "xschema/stats.h"

namespace legodb::xs {

// Extracts path statistics from example XML documents — the "statistics
// extracted from an example XML dataset" input of Figure 7. Multiple
// documents may be fed to one collector; Finish() produces the StatsSet.
class StatsCollector {
 public:
  StatsCollector() = default;

  void AddDocument(const xml::Document& doc);
  void AddTree(const xml::Node& root);

  // Produces:
  //  - STcnt for every element/attribute path,
  //  - STsize (average content size) for paths with text content,
  //  - STbase (min, max, distincts) for paths whose text is always integer,
  //  - distinct-string counts for other text paths,
  //  - aggregated entries under the pseudo-step "TILDE" so wildcard schema
  //    positions can be annotated.
  StatsSet Finish() const;

 private:
  struct Accumulator {
    int64_t count = 0;
    int64_t text_occurrences = 0;
    double total_size = 0;
    bool all_integer = true;
    int64_t min = 0;
    int64_t max = 0;
    std::vector<std::string> samples;  // deduplicated lazily in Finish()
  };

  void Visit(const xml::Node& node, StatPath* path);
  void Record(const StatPath& path, const std::string& text, bool has_text);

  std::map<StatPath, Accumulator> acc_;
};

}  // namespace legodb::xs

#endif  // LEGODB_XSCHEMA_STATS_COLLECTOR_H_
