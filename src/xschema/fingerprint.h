#ifndef LEGODB_XSCHEMA_FINGERPRINT_H_
#define LEGODB_XSCHEMA_FINGERPRINT_H_

// Canonical p-schema fingerprints: a stable 64-bit hash over the types
// reachable from the root, covering structure, name classes, occurrence
// bounds, and every statistics annotation (scalar stats, average counts,
// branch weights). Two schemas with equal fingerprints produce the same
// relational configuration and cost, so the configuration search dedupes
// candidate schemas and keys cost caches on fingerprints instead of
// rendered schema text.
//
// Properties:
//  - deterministic across runs/platforms (no pointers, no std::hash);
//  - insensitive to definitions unreachable from the root and to the
//    declaration order of reachable definitions (canonical name order);
//  - sensitive to type names (they name relations), structure, and stats.

#include <cstdint>

#include "xschema/schema.h"
#include "xschema/type.h"

namespace legodb::xs {

// Structural hash of one type expression, statistics included. Type
// references hash by name only (the schema fingerprint binds names to
// bodies).
uint64_t FingerprintType(const TypePtr& type);

// Fingerprint of the whole schema: root name plus (name, body fingerprint)
// for every type reachable from the root, combined in sorted-name order.
uint64_t FingerprintSchema(const Schema& schema);

}  // namespace legodb::xs

#endif  // LEGODB_XSCHEMA_FINGERPRINT_H_
