#ifndef LEGODB_IMDB_IMDB_H_
#define LEGODB_IMDB_IMDB_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/workload.h"
#include "xml/dom.h"
#include "xschema/schema.h"
#include "xschema/stats.h"

namespace legodb::imdb {

// The paper's IMDB schema in the XML Query Algebra notation (Appendix B):
// shows (movies | TV series with episodes), directors, actors.
const char* SchemaText();

// The paper's data statistics (Appendix A), verbatim in the STcnt / STsize /
// STbase notation.
const char* StatsText();

// Parsed and validated forms.
StatusOr<xs::Schema> Schema();
StatusOr<xs::StatsSet> Stats();

// One of the paper's queries (Appendix C and Section 2), by name:
// "Q1".."Q20" plus the Section-2 motivating queries "S2Q1".."S2Q4".
// Returns nullptr for unknown names. Query paths follow our navigation
// syntax: reviews are reached as $v/reviews/<source> (e.g. Q1 uses
// $v/reviews/nyt where the paper wrote $v/nyt_reviews).
const char* QueryText(const std::string& name);

// Canned workloads:
//  - "lookup":  Q8, Q9, Q11, Q12, Q13 (Section 5.2)
//  - "publish": Q15, Q16, Q17        (Section 5.2)
//  - "w1": {S2Q1:.4, S2Q2:.4, S2Q3:.1, S2Q4:.1}  (Section 2)
//  - "w2": {S2Q1:.1, S2Q2:.1, S2Q3:.4, S2Q4:.4}  (Section 2)
StatusOr<core::Workload> MakeWorkload(const std::string& name);

// ---- Synthetic data --------------------------------------------------------

// Scale knobs for the synthetic IMDB generator; defaults give a small
// dataset whose *shape* matches Appendix A (ratios of akas/reviews/episodes
// per show etc.). The generator substitutes for the real IMDB dump the
// paper used, which is not redistributable.
struct ImdbScale {
  int shows = 60;
  double tv_fraction = 0.2;      // shows that are TV series
  double aka_mean = 0.4;         // akas per show (13641/34798)
  double review_mean = 0.33;     // reviews per show (11250/34798)
  double nyt_fraction = 0.4;     // reviews tagged <nyt>
  double episodes_per_tv = 9.0;  // 31250/3500
  int directors = 25;
  double directed_per_director = 4.0;  // 105004/26251
  int actors = 80;
  double played_per_actor = 4.0;  // 663144/165786
  double award_prob = 0.1;
  double biography_prob = 0.25;   // 20000/165786 rounded up for testing
  uint64_t seed = 42;
};

// Generates a document valid under Schema() with the given scale.
xml::Document Generate(const ImdbScale& scale);

}  // namespace legodb::imdb

#endif  // LEGODB_IMDB_IMDB_H_
