#include "imdb/imdb.h"

#include <cmath>
#include <map>

#include "xschema/schema_parser.h"

namespace legodb::imdb {

const char* SchemaText() {
  return R"(
type IMDB = imdb [ Show{0,*}, Director{0,*}, Actor{0,*} ]

type Show = show [ @type[ String ],
                   title[ String ],
                   year[ Integer ],
                   aka[ String ]{0,10},
                   reviews[ ~[ String ] ]{0,*},
                   ( Movie | TV ) ]

type Movie = box_office[ Integer ], video_sales[ Integer ]

type TV = seasons[ Integer ], description[ String ],
          episodes[ name[ String ], guest_director[ String ] ]{0,*}

type Director = director [ name[ String ],
                           directed[ title[ String ], year[ Integer ],
                                     info[ String ]?,
                                     ~[ String ]? ]{0,*} ]

type Actor = actor [ name[ String ],
                     played[ title[ String ], year[ Integer ],
                             character[ String ],
                             order_of_appearance[ Integer ],
                             award[ result[ String ],
                                    award_name[ String ] ]{0,5} ]{0,*},
                     biography[ birthday[ String ], text[ String ] ]? ]
)";
}

const char* StatsText() {
  // Appendix A, verbatim (paths for the wildcard positions use "TILDE").
  return R"(
(["imdb"], STcnt(1));
(["imdb";"director"], STcnt(26251));
(["imdb";"director";"name"], STsize(40));
(["imdb";"director";"directed"], STcnt(105004));
(["imdb";"director";"directed";"title"], STsize(40));
(["imdb";"director";"directed";"year"], STbase(1800,2100,300));
(["imdb";"director";"directed";"info"], STcnt(50000));
(["imdb";"director";"directed";"info"], STsize(100));
(["imdb";"director";"directed";"TILDE"], STsize(255));
(["imdb";"show"], STcnt(34798));
(["imdb";"show";"title"], STsize(50));
(["imdb";"show";"year"], STbase(1800,2100,300));
(["imdb";"show";"aka"], STcnt(13641));
(["imdb";"show";"aka"], STsize(40));
(["imdb";"show";"type"], STsize(8));
(["imdb";"show";"reviews"], STcnt(11250));
(["imdb";"show";"reviews";"TILDE"], STsize(800));
(["imdb";"show";"box_office"], STcnt(7000));
(["imdb";"show";"box_office"], STbase(10000,100000000,7000));
(["imdb";"show";"video_sales"], STcnt(7000));
(["imdb";"show";"video_sales"], STbase(10000,100000000,7000));
(["imdb";"show";"seasons"], STcnt(3500));
(["imdb";"show";"description"], STsize(120));
(["imdb";"show";"episodes"], STcnt(31250));
(["imdb";"show";"episodes";"name"], STsize(40));
(["imdb";"show";"episodes";"guest_director"], STsize(40));
(["imdb";"actor"], STcnt(165786));
(["imdb";"actor";"name"], STsize(40));
(["imdb";"actor";"played"], STcnt(663144));
(["imdb";"actor";"played";"title"], STsize(40));
(["imdb";"actor";"played";"year"], STbase(1800,2100,200));
(["imdb";"actor";"played";"character"], STsize(40));
(["imdb";"actor";"played";"order_of_appearance"], STbase(1,300,300));
(["imdb";"actor";"played";"award";"result"], STsize(3));
(["imdb";"actor";"played";"award";"award_name"], STsize(40));
(["imdb";"actor";"biography"], STcnt(20000));
(["imdb";"actor";"biography";"birthday"], STsize(10));
(["imdb";"actor";"biography";"text"], STcnt(20000));
(["imdb";"actor";"biography";"text"], STsize(30));
)";
}

StatusOr<xs::Schema> Schema() { return xs::ParseSchema(SchemaText()); }

StatusOr<xs::StatsSet> Stats() { return xs::ParseStats(StatsText()); }

const char* QueryText(const std::string& name) {
  static const std::map<std::string, const char*> kQueries = {
      // --- Appendix C: lookup ---
      {"Q1", R"(FOR $v IN document("imdbdata")/imdb/show
                WHERE $v/title = c1
                RETURN $v/title, $v/year, $v/type)"},
      {"Q2", R"(FOR $v IN document("imdbdata")/imdb/show
                WHERE $v/title = c1
                RETURN $v/title, $v/year)"},
      {"Q3", R"(FOR $v IN document("imdbdata")/imdb/show
                WHERE $v/year = c1
                RETURN $v/title, $v/year)"},
      {"Q4", R"(FOR $v IN document("imdbdata")/imdb/show
                WHERE $v/title = c1
                RETURN $v/title, $v/year, $v/description)"},
      {"Q5", R"(FOR $v IN document("imdbdata")/imdb/show
                WHERE $v/title = c1
                RETURN $v/title, $v/year, $v/box_office)"},
      {"Q6", R"(FOR $v IN document("imdbdata")/imdb/show
                WHERE $v/title = c1
                RETURN $v/title, $v/year, $v/box_office, $v/description)"},
      {"Q7", R"(FOR $v IN document("imdbdata")/imdb/show
                RETURN $v/title, $v/year,
                  FOR $e IN $v/episodes
                  WHERE $e/guest_director = c1
                  RETURN $e/guest_director)"},
      {"Q8", R"(FOR $v IN document("imdbdata")/imdb/actor
                WHERE $v/name = c1
                RETURN $v/biography/birthday)"},
      {"Q9", R"(FOR $v IN document("imdbdata")/imdb/actor
                RETURN <result> $v/name,
                  FOR $b IN $v/biography
                  WHERE $b/birthday = c1
                  RETURN $b/text
                </result>)"},
      {"Q10", R"(FOR $v IN document("imdbdata")/imdb/actor
                 RETURN <result> $v/name,
                   FOR $b IN $v/biography
                   WHERE $b/birthday = c1
                   RETURN $b/text, $b/birthday
                 </result>)"},
      {"Q11", R"(FOR $v IN document("imdbdata")/imdb/actor
                 RETURN <result> $v/name,
                   FOR $p IN $v/played
                   WHERE $p/character = c1
                   RETURN $p/order_of_appearance
                 </result>)"},
      {"Q12", R"(FOR $i IN document("imdbdata")/imdb
                 FOR $a IN $i/actor, $m1 IN $a/played,
                     $d IN $i/director, $m2 IN $d/directed
                 WHERE $a/name = $d/name AND $m1/title = $m2/title
                 RETURN <result> $a/name, $m1/title, $m1/year </result>)"},
      {"Q13", R"(FOR $i IN document("imdbdata")/imdb
                 FOR $s IN $i/show, $a IN $i/actor, $m1 IN $a/played,
                     $d IN $i/director, $m2 IN $d/directed
                 WHERE $a/name = $d/name AND $m1/title = $m2/title
                   AND $m1/title = $s/title
                 RETURN <result> $a/name, $m1/title, $m1/year, $s/aka
                 </result>)"},
      {"Q14", R"(FOR $i IN document("imdbdata")/imdb
                 FOR $a IN $i/actor, $m1 IN $a/played,
                     $d IN $i/director, $m2 IN $d/directed
                 WHERE $a/name = c1 AND $m1/title = $m2/title
                 RETURN <result> $d/name, $m1/title, $m1/year </result>)"},
      // --- Appendix C: publish ---
      {"Q15", R"(FOR $a IN document("imdbdata")/imdb/actor RETURN $a)"},
      {"Q16", R"(FOR $s IN document("imdbdata")/imdb/show RETURN $s)"},
      {"Q17", R"(FOR $d IN document("imdbdata")/imdb/director RETURN $d)"},
      {"Q18", R"(FOR $a IN document("imdbdata")/imdb/actor
                 WHERE $a/name = c1 RETURN $a)"},
      {"Q19", R"(FOR $s IN document("imdbdata")/imdb/show
                 WHERE $s/title = c1 RETURN $s)"},
      {"Q20", R"(FOR $d IN document("imdbdata")/imdb/director
                 WHERE $d/name = c1 RETURN $d)"},
      // --- Section 2 motivating queries (Figure 5). The paper's
      // $v/nyt_reviews is spelled $v/reviews/nyt in our navigation. ---
      {"S2Q1", R"(FOR $v IN document("imdbdata")/imdb/show
                  WHERE $v/year = 1999
                  RETURN $v/title, $v/year, $v/reviews/nyt)"},
      {"S2Q2", R"(FOR $v IN document("imdbdata")/imdb/show RETURN $v)"},
      {"S2Q3", R"(FOR $v IN document("imdbdata")/imdb/show
                  WHERE $v/title = c2
                  RETURN $v/description)"},
      {"S2Q4", R"(FOR $v IN document("imdbdata")/imdb/show
                  RETURN <result> $v/title, $v/year,
                    FOR $e IN $v/episodes
                    WHERE $e/guest_director = c4
                    RETURN $e/name, $e/guest_director
                  </result>)"},
  };
  auto it = kQueries.find(name);
  return it == kQueries.end() ? nullptr : it->second;
}

StatusOr<core::Workload> MakeWorkload(const std::string& name) {
  struct Entry {
    const char* query;
    double weight;
  };
  std::vector<Entry> entries;
  if (name == "lookup") {
    entries = {{"Q8", 1}, {"Q9", 1}, {"Q11", 1}, {"Q12", 1}, {"Q13", 1}};
  } else if (name == "publish") {
    entries = {{"Q15", 1}, {"Q16", 1}, {"Q17", 1}};
  } else if (name == "w1") {
    entries = {{"S2Q1", 0.4}, {"S2Q2", 0.4}, {"S2Q3", 0.1}, {"S2Q4", 0.1}};
  } else if (name == "w2") {
    entries = {{"S2Q1", 0.1}, {"S2Q2", 0.1}, {"S2Q3", 0.4}, {"S2Q4", 0.4}};
  } else {
    return Status::NotFound("unknown workload '" + name + "'");
  }
  core::Workload workload;
  for (const auto& e : entries) {
    const char* text = QueryText(e.query);
    if (!text) return Status::Internal("missing query");
    LEGODB_RETURN_IF_ERROR(workload.Add(e.query, text, e.weight));
  }
  return workload;
}

namespace {

// Approximately Poisson-distributed count with the given mean.
int SampleCount(double mean, Rng* rng) {
  int base = static_cast<int>(std::floor(mean));
  double frac = mean - base;
  return base + (rng->Bernoulli(frac) ? 1 : 0) +
         (rng->Bernoulli(0.25) ? 1 : 0) - (rng->Bernoulli(0.25) ? 1 : 0);
}

const char* kOtherReviewSources[] = {"suntimes", "variety", "guardian"};

}  // namespace

xml::Document Generate(const ImdbScale& scale) {
  Rng rng(scale.seed);
  xml::Document doc;
  doc.root = xml::Node::Element("imdb");
  xml::Node* imdb = doc.root.get();

  // A shared pool of person names so actor/director joins (Q12-Q14) hit.
  int people = std::max(scale.actors, scale.directors) + 10;
  auto person = [&](int i) { return "person" + std::to_string(i % people); };
  auto title = [&](int i) {
    return "title" + std::to_string(i % std::max(1, scale.shows));
  };

  for (int i = 0; i < scale.shows; ++i) {
    bool tv = rng.NextDouble() < scale.tv_fraction;
    xml::Node* show = imdb->AddElement("show");
    show->SetAttribute("type", tv ? "TV series" : "Movie");
    show->AddElement("title", title(i));
    show->AddElement("year",
                     std::to_string(1980 + rng.UniformInt(0, 40)));
    int akas = std::min(10, std::max(0, SampleCount(scale.aka_mean, &rng)));
    for (int a = 0; a < akas; ++a) {
      show->AddElement("aka", "aka" + std::to_string(i) + "_" +
                                  std::to_string(a));
    }
    int reviews = std::max(0, SampleCount(scale.review_mean, &rng));
    for (int r = 0; r < reviews; ++r) {
      xml::Node* rev = show->AddElement("reviews");
      if (rng.NextDouble() < scale.nyt_fraction) {
        rev->AddElement("nyt", "nyt review of " + title(i));
      } else {
        const char* src = kOtherReviewSources[rng.Uniform(3)];
        rev->AddElement(src, std::string(src) + " review of " + title(i));
      }
    }
    if (!tv) {
      show->AddElement("box_office",
                       std::to_string(10000 + rng.UniformInt(0, 99000000)));
      show->AddElement("video_sales",
                       std::to_string(10000 + rng.UniformInt(0, 99000000)));
    } else {
      show->AddElement("seasons", std::to_string(1 + rng.UniformInt(0, 9)));
      show->AddElement("description", "description of " + title(i));
      int episodes = std::max(0, SampleCount(scale.episodes_per_tv, &rng));
      for (int e = 0; e < episodes; ++e) {
        xml::Node* ep = show->AddElement("episodes");
        ep->AddElement("name",
                       "episode" + std::to_string(i) + "_" + std::to_string(e));
        ep->AddElement("guest_director",
                       person(static_cast<int>(rng.Uniform(people))));
      }
    }
  }

  for (int i = 0; i < scale.directors; ++i) {
    xml::Node* director = imdb->AddElement("director");
    director->AddElement("name", person(i));
    int directed =
        std::max(0, SampleCount(scale.directed_per_director, &rng));
    for (int d = 0; d < directed; ++d) {
      xml::Node* m = director->AddElement("directed");
      m->AddElement("title", title(static_cast<int>(rng.Uniform(
                                 std::max(1, scale.shows)))));
      m->AddElement("year", std::to_string(1980 + rng.UniformInt(0, 40)));
      if (rng.Bernoulli(0.5)) {
        m->AddElement("info", "info about direction " + std::to_string(d));
      }
      if (rng.Bernoulli(0.3)) {
        m->AddElement("trivia", "wildcard trivia " + std::to_string(d));
      }
    }
  }

  for (int i = 0; i < scale.actors; ++i) {
    xml::Node* actor = imdb->AddElement("actor");
    actor->AddElement("name", person(i + scale.directors / 2));
    int played = std::max(0, SampleCount(scale.played_per_actor, &rng));
    for (int p = 0; p < played; ++p) {
      xml::Node* m = actor->AddElement("played");
      m->AddElement("title", title(static_cast<int>(rng.Uniform(
                                 std::max(1, scale.shows)))));
      m->AddElement("year", std::to_string(1980 + rng.UniformInt(0, 40)));
      m->AddElement("character", "character" + std::to_string(p));
      m->AddElement("order_of_appearance",
                    std::to_string(1 + rng.UniformInt(0, 299)));
      if (rng.Bernoulli(scale.award_prob)) {
        xml::Node* award = m->AddElement("award");
        award->AddElement("result", rng.Bernoulli(0.5) ? "won" : "nom");
        award->AddElement("award_name", "oscar");
      }
    }
    if (rng.Bernoulli(scale.biography_prob)) {
      xml::Node* bio = actor->AddElement("biography");
      bio->AddElement("birthday",
                      "19" + std::to_string(50 + rng.UniformInt(0, 49)) +
                          "-01-01");
      bio->AddElement("text", "biography of actor " + std::to_string(i));
    }
  }
  return doc;
}

}  // namespace legodb::imdb
