#include "core/cost.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/str_util.h"
#include "optimizer/optimizer.h"
#include "translate/translate.h"

namespace legodb::core {

StatusOr<double> CostQuery(const map::Mapping& mapping, const xq::Query& query,
                           const opt::CostParams& params) {
  LEGODB_ASSIGN_OR_RETURN(opt::RelQuery rq,
                          xlat::TranslateQuery(query, mapping));
  opt::Optimizer optimizer(mapping.catalog(), params);
  LEGODB_ASSIGN_OR_RETURN(opt::PlannedQuery planned,
                          optimizer.PlanQuery(rq));
  return planned.total_cost;
}

namespace {

// A resolved position of an update path: the concrete type whose table is
// touched, and whether the final step crossed into that type (outlined
// target) or stayed within its inlined content.
struct UpdateTarget {
  std::string type;
  bool outlined = false;
};

// Lightweight path resolution over the mapping (a simplified version of the
// translator's navigation: no joins or predicates are built, only the set
// of types the path can land in).
void ResolveStep(const map::Mapping& m, const UpdateTarget& pos,
                 const map::RelPath& rel_path, const std::string& step,
                 std::vector<std::pair<UpdateTarget, map::RelPath>>* out) {
  const map::TypeMapping& tm = m.GetType(pos.type);
  // Inline continuation: scan for components extending the current path
  // whose base matches the step (literally or via a wildcard position).
  std::set<std::string> comps;
  auto scan = [&](const map::RelPath& p) {
    if (p.size() > rel_path.size() &&
        std::equal(rel_path.begin(), rel_path.end(), p.begin())) {
      comps.insert(p[rel_path.size()]);
    }
  };
  for (const auto& slot : tm.slots) scan(slot.path);
  for (const auto& child : tm.children) scan(child.path);
  for (const auto& comp : comps) {
    std::string base = map::BaseStep(comp);
    if (base == step || base == "~") {
      map::RelPath next = rel_path;
      next.push_back(comp);
      out->push_back({UpdateTarget{pos.type, false}, next});
    }
  }
  // Crossing into child types referenced at this position.
  std::function<void(const std::string&, int)> enter =
      [&](const std::string& child, int depth) {
        if (depth > 8) return;
        const map::TypeMapping& ctm = m.GetType(child);
        if (ctm.virtual_union) {
          for (const auto& alt : ctm.union_alternatives) {
            enter(alt, depth + 1);
          }
          return;
        }
        for (const std::string& entry : m.EntryNames(child)) {
          if (entry == step || entry == "*") {
            out->push_back({UpdateTarget{child, true},
                            map::RelPath{entry == "*" ? "~" : entry}});
            break;
          }
        }
      };
  for (const auto& child : tm.children) {
    if (child.path == rel_path) enter(child.type_name, 0);
  }
}

// Expected rows written when one instance of `type` is inserted: its own
// row plus expected descendant rows.
double SubtreeRowCost(const map::Mapping& m, const std::string& type,
                      const opt::CostParams& p, int depth) {
  if (depth > 8) return 0;
  const map::TypeMapping& tm = m.GetType(type);
  if (tm.virtual_union) {
    double total = 0;
    for (const auto& child : tm.children) {
      total += child.expected_per_parent *
               SubtreeRowCost(m, child.type_name, p, depth + 1);
    }
    return total;
  }
  const rel::Table& table = m.catalog().GetTable(tm.table);
  double indexes = 1.0 + static_cast<double>(table.foreign_keys.size());
  double row = table.RowWidth() * p.write_per_byte + indexes * p.seek_cost;
  for (const auto& child : tm.children) {
    row += child.expected_per_parent *
           SubtreeRowCost(m, child.type_name, p, depth + 1);
  }
  return row;
}

}  // namespace

StatusOr<double> CostUpdate(const map::Mapping& mapping, const UpdateOp& op,
                            const opt::CostParams& params) {
  if (op.path.empty()) {
    return Status::InvalidArgument("update path is empty");
  }
  const std::string& root = mapping.schema().root_type();
  const map::TypeMapping* rtm = mapping.FindType(root);
  if (!rtm || rtm->virtual_union) {
    return Status::Unsupported("virtual root type");
  }
  // The first step names the root element.
  std::vector<std::pair<UpdateTarget, map::RelPath>> positions;
  for (const std::string& entry : mapping.EntryNames(root)) {
    if (entry == op.path[0] || entry == "*") {
      positions.push_back({UpdateTarget{root, false},
                           map::RelPath{entry == "*" ? "~" : op.path[0]}});
    }
  }
  for (size_t i = 1; i < op.path.size() && !positions.empty(); ++i) {
    std::vector<std::pair<UpdateTarget, map::RelPath>> next;
    for (const auto& [pos, rel_path] : positions) {
      ResolveStep(mapping, pos, rel_path, op.path[i], &next);
    }
    positions = std::move(next);
  }
  if (positions.empty()) {
    return Status::NotFound("update path does not resolve: " + op.name);
  }

  // Average the cost over the resolved alternatives.
  double total = 0;
  for (const auto& [target, rel_path] : positions) {
    const map::TypeMapping& tm = mapping.GetType(target.type);
    const rel::Table& table = mapping.catalog().GetTable(tm.table);
    double locate = params.index_probe_seeks * params.seek_cost +
                    params.seek_cost;  // find the owning/parent row
    double write;
    if (target.outlined) {
      // New row(s) in the target's table and its expected descendants.
      write = SubtreeRowCost(mapping, target.type, params, 0);
    } else {
      // Inlined content: read-modify-write of the whole (wide) row plus
      // the owning table's index maintenance.
      double indexes =
          1.0 + static_cast<double>(table.foreign_keys.size());
      write = table.RowWidth() *
                  (params.read_per_byte + params.write_per_byte) +
              indexes * params.seek_cost;
    }
    total += locate + write;
  }
  return total / static_cast<double>(positions.size());
}

StatusOr<SchemaCost> CostSchema(const xs::Schema& pschema,
                                const Workload& workload,
                                const opt::CostParams& params) {
  LEGODB_ASSIGN_OR_RETURN(map::Mapping mapping, map::MapSchema(pschema));
  SchemaCost result;
  for (const auto& wq : workload.queries) {
    LEGODB_ASSIGN_OR_RETURN(double cost,
                            CostQuery(mapping, wq.query, params));
    result.per_query.push_back(cost);
    result.total += wq.weight * cost;
  }
  for (const auto& op : workload.updates) {
    LEGODB_ASSIGN_OR_RETURN(double cost, CostUpdate(mapping, op, params));
    result.per_update.push_back(cost);
    result.total += op.weight * cost;
  }
  return result;
}

}  // namespace legodb::core
