#ifndef LEGODB_CORE_WORKLOAD_H_
#define LEGODB_CORE_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xquery/ast.h"
#include "xquery/parser.h"

namespace legodb::core {

// A named, weighted query — one entry of the paper's application workload
// (e.g. W1 = {Q1: 0.4, Q2: 0.4, Q3: 0.1, Q4: 0.1}).
struct WorkloadQuery {
  std::string name;
  xq::Query query;
  double weight = 1;
};

// An update operation in the workload — the paper's Section-7 "including
// updates in our workload" extension. Models inserting (or deleting) one
// instance of the element reached by `path` per execution, e.g.
// {"imdb","show","reviews"}: add a review to some show. Updates pull the
// search toward narrow, outlined designs: an insert into an outlined
// collection writes one lean row, while content inlined into a wide
// relation pays a wide-row rewrite plus that table's index maintenance.
struct UpdateOp {
  enum class Kind { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  std::string name;
  std::vector<std::string> path;  // element path from the document root
  double weight = 1;
};

struct Workload {
  std::vector<WorkloadQuery> queries;
  std::vector<UpdateOp> updates;

  // Parses and appends a query; returns an error on bad syntax.
  Status Add(const std::string& name, const std::string& text, double weight);

  // Appends an update operation on a '/'-separated element path, e.g.
  // "imdb/show/reviews".
  void AddUpdate(const std::string& name, UpdateOp::Kind kind,
                 const std::string& slash_path, double weight);

  // Sum of weights (used to normalize to an average per-query cost).
  double TotalWeight() const;

  // All literal path step names appearing anywhere in the workload; feeds
  // wildcard-materialization candidates.
  std::vector<std::string> PathStepNames() const;

  // A workload mixing `a` and `b` with ratio k:(1-k) (the Section 5.3
  // spectrum construction).
  static Workload Mix(const Workload& a, const Workload& b, double k);
};

}  // namespace legodb::core

#endif  // LEGODB_CORE_WORKLOAD_H_
