#ifndef LEGODB_CORE_EXPLAIN_H_
#define LEGODB_CORE_EXPLAIN_H_

#include <string>

#include "core/search.h"
#include "obs/obs.h"

namespace legodb::core {

// Renders the greedy-search trajectory as an aligned table — one row per
// iteration (iteration, cost, candidates evaluated, elapsed ms, chosen
// transformation), mirroring the paper's Figure-10 narrative.
std::string ExplainSearchTable(const SearchResult& result);

// One-paragraph summary of a search run: iterations, cost improvement,
// optimizer invocations, and the cost-cache hit rate.
std::string SearchSummary(const SearchResult& result);

// Hit fraction of the cost-estimate cache, in [0, 1] (0 when nothing ran).
double CacheHitRate(const SearchStats& stats);

}  // namespace legodb::core

#endif  // LEGODB_CORE_EXPLAIN_H_
