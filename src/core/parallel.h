#ifndef LEGODB_CORE_PARALLEL_H_
#define LEGODB_CORE_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "common/cancel.h"

namespace legodb::core {

// Resolves a thread-count request: n >= 1 is taken literally; n <= 0 means
// "one worker per hardware thread" (never less than 1).
int ResolveThreads(int requested);

// Cooperative cancellation flag shared between a ParallelFor caller and its
// workers (and, since the serving layer grew request cancellation, between
// a request issuer and the executor). Cancel() stops workers from
// *claiming* further indices; the task currently inside fn runs to
// completion (fn may also poll cancelled() itself to stop early). The
// shared definition lives in common/cancel.h so the engine can poll the
// same token type without depending on the search orchestration layer.
using CancelToken = ::legodb::common::CancelToken;

// Runs fn(0) ... fn(n-1), distributing indices over at most `threads`
// workers (atomic work-stealing counter). With threads <= 1 or n <= 1 the
// calls run inline on the calling thread, in index order — the serial path
// has no pool, no locks, and no reordering.
//
// When `cancel` is non-null, every worker checks it before claiming each
// index and stops claiming once it is cancelled: indices not yet claimed
// are never run. Cancellation is cooperative and therefore racy by design;
// callers must treat "fn(i) never ran" as a legal outcome for any i.
//
// Each worker installs the calling thread's ambient obs registry, so
// counters/histograms recorded inside fn accumulate into the same registry
// regardless of thread count. `fn` must be safe to invoke concurrently;
// exceptions must not escape it.
//
// Failpoint "parallel.force_serial" (see common/failpoint.h) degrades the
// pool to serial in-order execution, for reproducing pool-starvation
// scenarios in tests.
void ParallelFor(size_t n, int threads, const std::function<void(size_t)>& fn,
                 CancelToken* cancel = nullptr);

}  // namespace legodb::core

#endif  // LEGODB_CORE_PARALLEL_H_
