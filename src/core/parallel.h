#ifndef LEGODB_CORE_PARALLEL_H_
#define LEGODB_CORE_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace legodb::core {

// Resolves a thread-count request: n >= 1 is taken literally; n <= 0 means
// "one worker per hardware thread" (never less than 1).
int ResolveThreads(int requested);

// Runs fn(0) ... fn(n-1), distributing indices over at most `threads`
// workers (atomic work-stealing counter). With threads <= 1 or n <= 1 the
// calls run inline on the calling thread, in index order — the serial path
// has no pool, no locks, and no reordering.
//
// Each worker installs the calling thread's ambient obs registry, so
// counters/histograms recorded inside fn accumulate into the same registry
// regardless of thread count. `fn` must be safe to invoke concurrently;
// exceptions must not escape it.
void ParallelFor(size_t n, int threads, const std::function<void(size_t)>& fn);

}  // namespace legodb::core

#endif  // LEGODB_CORE_PARALLEL_H_
