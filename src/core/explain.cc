#include "core/explain.h"

#include <cstdio>

#include "common/table_printer.h"

namespace legodb::core {

std::string ExplainSearchTable(const SearchResult& result) {
  TablePrinter table({"iter", "cost", "descriptors", "candidates", "failed",
                      "elapsed_ms", "speedup", "transformation"});
  for (const auto& step : result.trace) {
    double speedup =
        step.elapsed_ms > 0 ? step.work_ms / step.elapsed_ms : 0;
    table.AddRow({std::to_string(step.iteration), FormatDouble(step.cost, 1),
                  std::to_string(step.descriptors),
                  std::to_string(step.candidates),
                  std::to_string(step.failed),
                  FormatDouble(step.elapsed_ms, 2),
                  step.iteration == 0 ? "-" : FormatDouble(speedup, 2) + "x",
                  step.applied.empty() ? "(initial configuration)"
                                       : step.applied});
  }
  std::string out = table.ToString();
  if (result.degraded) {
    out += "degraded: " + result.degraded_reason + "\n";
  }
  return out;
}

double CacheHitRate(const SearchStats& stats) {
  int64_t lookups = stats.cache_hits + stats.cost_evaluations;
  return lookups == 0
             ? 0.0
             : static_cast<double>(stats.cache_hits) /
                   static_cast<double>(lookups);
}

std::string SearchSummary(const SearchResult& result) {
  double initial = result.trace.empty() ? 0 : result.trace.front().cost;
  double reduction =
      initial == 0 ? 0 : 100.0 * (1.0 - result.best_cost / initial);
  char buf[384];
  std::snprintf(
      buf, sizeof(buf),
      "%zu iterations, cost %.1f -> %.1f (%.1f%% reduction), "
      "%lld descriptors, %lld optimizer calls, %lld cache hits "
      "(%.1f%% fingerprint-cache hit rate), %d thread%s",
      result.trace.empty() ? 0 : result.trace.size() - 1, initial,
      result.best_cost, reduction,
      static_cast<long long>(result.stats.descriptors_enumerated),
      static_cast<long long>(result.stats.cost_evaluations),
      static_cast<long long>(result.stats.cache_hits),
      100.0 * CacheHitRate(result.stats), result.stats.threads_used,
      result.stats.threads_used == 1 ? "" : "s");
  std::string out = buf;
  if (result.stats.candidates_failed > 0) {
    out += ", " + std::to_string(result.stats.candidates_failed) +
           " candidate(s) skipped";
  }
  if (result.degraded) out += " [degraded: " + result.degraded_reason + "]";
  return out;
}

}  // namespace legodb::core
