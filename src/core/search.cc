#include "core/search.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "common/hash.h"
#include "core/parallel.h"
#include "obs/obs.h"
#include "optimizer/optimizer.h"
#include "translate/translate.h"
#include "xschema/fingerprint.h"

namespace legodb::core {

SearchOptions GreedySiOptions() {
  SearchOptions o;
  o.start = SearchOptions::Start::kAllInlined;
  o.transforms.inline_types = false;
  o.transforms.outline_elements = true;
  return o;
}

SearchOptions GreedySoOptions() {
  SearchOptions o;
  o.start = SearchOptions::Start::kAllOutlined;
  o.transforms.inline_types = true;
  o.transforms.outline_elements = false;
  return o;
}

uint64_t CostCacheFingerprint(const opt::RelQuery& query,
                              const rel::Catalog& catalog) {
  uint64_t h = common::HashString(query.ToSql());
  std::set<std::string> tables;
  for (const auto& block : query.blocks) {
    for (const auto& rel : block.rels) tables.insert(rel.table);
  }
  for (const auto& name : tables) {
    const rel::Table& t = catalog.GetTable(name);
    h = common::HashCombine(h, common::HashString(t.name));
    h = common::HashCombine(h, common::HashString(t.key_column));
    h = common::HashDouble(t.row_count, h);
    h = common::HashInt(static_cast<int64_t>(t.columns.size()), h);
    for (const auto& col : t.columns) {
      h = common::HashCombine(h, common::HashString(col.name));
      h = common::HashInt(static_cast<int64_t>(col.type.kind), h);
      h = common::HashDouble(col.type.width, h);
      h = common::HashInt(col.nullable ? 1 : 0, h);
      h = common::HashDouble(col.null_fraction, h);
      h = common::HashDouble(col.distincts, h);
      h = common::HashInt(col.min, h);
      h = common::HashInt(col.max, h);
    }
    for (const auto& fk : t.foreign_keys) {
      h = common::HashCombine(h, common::HashString(fk.column));
      h = common::HashCombine(h, common::HashString(fk.parent_table));
    }
  }
  return common::Mix64(h);
}

namespace {

// Costs workloads against configurations, reusing a query's estimate when
// the fingerprint of its translated SQL plus the touched tables'
// statistics matches an earlier configuration. Most single transformations
// affect one or two types, so most workload queries hit the cache.
//
// Thread-safe: Cost() may run concurrently for different configurations.
// The per-query caches sit behind one mutex (lookups are cheap; planning —
// the expensive part — runs outside the lock), and the counters are
// atomic. Two workers missing the same key concurrently may both plan it
// (both count as evaluations), so per-(configuration, query) exactly one
// of {cache_hit, cost_evaluation} is recorded and the totals invariant of
// SearchStats holds at any thread count.
class CachedCoster {
 public:
  CachedCoster(const Workload& workload, const opt::CostParams& params,
               bool enabled)
      : workload_(workload), params_(params), enabled_(enabled) {
    caches_.resize(workload.queries.size());
  }

  StatusOr<double> Cost(const xs::Schema& pschema) {
    LEGODB_FAILPOINT("search.cost_schema");
    schemas_costed_.fetch_add(1, std::memory_order_relaxed);
    obs::Count("search.schemas_costed");
    LEGODB_ASSIGN_OR_RETURN(map::Mapping mapping, map::MapSchema(pschema));
    opt::Optimizer optimizer(mapping.catalog(), params_);
    double total = 0;
    for (size_t i = 0; i < workload_.queries.size(); ++i) {
      const WorkloadQuery& wq = workload_.queries[i];
      LEGODB_ASSIGN_OR_RETURN(opt::RelQuery rq,
                              xlat::TranslateQuery(wq.query, mapping));
      uint64_t key = 0;
      if (enabled_) {
        key = CostCacheFingerprint(rq, mapping.catalog());
        std::optional<double> cached;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = caches_[i].find(key);
          if (it != caches_[i].end()) cached = it->second;
        }
        if (cached) {
          cache_hits_.fetch_add(1, std::memory_order_relaxed);
          obs::Count("search.cache_hits");
          total += wq.weight * *cached;
          continue;
        }
      }
      LEGODB_ASSIGN_OR_RETURN(opt::PlannedQuery planned,
                              optimizer.PlanQuery(rq));
      cost_evaluations_.fetch_add(1, std::memory_order_relaxed);
      obs::Count("search.cost_evaluations");
      if (enabled_) {
        std::lock_guard<std::mutex> lock(mu_);
        caches_[i].emplace(key, planned.total_cost);
      }
      total += wq.weight * planned.total_cost;
    }
    for (const auto& op : workload_.updates) {
      LEGODB_ASSIGN_OR_RETURN(double cost,
                              CostUpdate(mapping, op, params_));
      total += op.weight * cost;
    }
    return total;
  }

  void FillStats(SearchStats* stats) const {
    stats->cost_evaluations = cost_evaluations_.load();
    stats->cache_hits = cache_hits_.load();
    stats->schemas_costed = schemas_costed_.load();
  }

 private:
  const Workload& workload_;
  const opt::CostParams& params_;
  bool enabled_;
  std::mutex mu_;
  std::vector<std::map<uint64_t, double>> caches_;
  std::atomic<int64_t> cost_evaluations_{0};
  std::atomic<int64_t> cache_hits_{0};
  std::atomic<int64_t> schemas_costed_{0};
};

struct BeamEntry {
  xs::Schema schema;
  double cost = 0;
};

// One candidate move of an iteration: a descriptor against a beam entry,
// materialized into a schema (phase A) and costed (phase B) on demand.
struct CandidateItem {
  size_t entry = 0;  // index into the beam
  TransformDescriptor desc;
  std::optional<xs::Schema> schema;  // set when the descriptor applied OK
  uint64_t fingerprint = 0;
  bool unique = false;  // survived fingerprint dedupe
  std::optional<double> cost;  // set when costing succeeded
  // Evaluation-guard bookkeeping: a phase that ran but produced no result
  // is a skipped candidate (counted, never fatal); a phase that never ran
  // (wall-clock cancellation) is neither.
  bool apply_attempted = false;
  bool cost_attempted = false;
  std::string error;  // first error seen for this candidate
};

}  // namespace

StatusOr<SearchResult> GreedySearch(const xs::Schema& annotated_schema,
                                    const Workload& workload,
                                    const opt::CostParams& params,
                                    const SearchOptions& options) {
  fp::EnableFromEnvOnce();
  fp::ScopedFailpoints scoped_failpoints(options.failpoints);
  LEGODB_RETURN_IF_ERROR(scoped_failpoints.status());
  obs::Span search_span("search");
  int64_t phase_start = obs::NowNanos();
  const int64_t deadline_ns =
      options.budget_ms > 0 ? phase_start + options.budget_ms * 1000000 : 0;
  auto past_deadline = [deadline_ns]() {
    return deadline_ns != 0 && obs::NowNanos() >= deadline_ns;
  };
  xs::Schema initial;
  switch (options.start) {
    case SearchOptions::Start::kAllInlined:
      initial = ps::AllInlined(annotated_schema);
      break;
    case SearchOptions::Start::kAllOutlined:
      initial = ps::AllOutlined(annotated_schema);
      break;
    case SearchOptions::Start::kAsIs:
      initial = ps::Normalize(annotated_schema);
      break;
  }

  SearchResult result;
  const int threads = ResolveThreads(options.threads);
  result.stats.threads_used = threads;
  CachedCoster coster(workload, params, options.cache_query_costs);
  double initial_cost;
  {
    obs::Span initial_span("search.initial_cost");
    LEGODB_ASSIGN_OR_RETURN(initial_cost, coster.Cost(initial));
  }

  int beam_width = std::max(1, options.beam_width);
  std::vector<BeamEntry> beam = {BeamEntry{initial, initial_cost}};
  xs::Schema best_schema = std::move(initial);
  double best_cost = initial_cost;
  // Fingerprints of configurations already evaluated anywhere in the run.
  std::set<uint64_t> seen = {xs::FingerprintSchema(best_schema)};

  result.trace.push_back(SearchResult::IterationLog{
      0, best_cost, "", 0, 0, 0,
      static_cast<double>(obs::NowNanos() - phase_start) / 1e6, 0});

  // "" while the search is on the clean Algorithm-4.1 path; set to the
  // degradation reason when a budget runs out. Convergence ("no neighbor
  // improves") is the only non-degraded way out of the loop.
  std::string stop_reason;
  std::string first_error;  // first skipped candidate's error, for diagnosis
  bool converged = false;
  int64_t candidates_budgeted = 0;  // against options.max_candidates

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    if (past_deadline()) {
      stop_reason = "wall-clock budget (" +
                    std::to_string(options.budget_ms) + "ms) exhausted";
      break;
    }
    obs::Span iter_span("search.iteration");
    int64_t iter_start = obs::NowNanos();
    obs::Count("search.iterations");

    // Enumerate transform descriptors against every beam entry — cheap:
    // no candidate schema is materialized here.
    std::vector<CandidateItem> items;
    for (size_t e = 0; e < beam.size(); ++e) {
      for (auto& desc :
           EnumerateTransformations(beam[e].schema, options.transforms)) {
        CandidateItem item;
        item.entry = e;
        item.desc = std::move(desc);
        items.push_back(std::move(item));
      }
    }
    result.stats.descriptors_enumerated +=
        static_cast<int64_t>(items.size());
    obs::Count("search.descriptors_enumerated",
               static_cast<int64_t>(items.size()));

    // Phase A (parallel): apply each descriptor and fingerprint the
    // resulting schema. The evaluation guard turns a transform failure on
    // one neighbor into a skipped candidate; the wall-clock deadline
    // cancels workers cooperatively (unclaimed candidates never run).
    std::atomic<int64_t> work_ns{0};
    CancelToken cancel;
    ParallelFor(
        items.size(), threads,
        [&](size_t k) {
          if (past_deadline()) {
            cancel.Cancel();
            return;
          }
          int64_t t0 = obs::NowNanos();
          CandidateItem& item = items[k];
          item.apply_attempted = true;
          auto next = ApplyTransformation(beam[item.entry].schema, item.desc);
          if (next.ok()) {
            item.fingerprint = xs::FingerprintSchema(next.value());
            item.schema = std::move(next).value();
          } else {
            item.error = next.status().ToString();
          }
          work_ns.fetch_add(obs::NowNanos() - t0, std::memory_order_relaxed);
        },
        &cancel);

    // Dedupe sequentially in descriptor order, so the surviving candidate
    // for any fingerprint is the same at every thread count.
    for (auto& item : items) {
      if (!item.schema) continue;
      if (seen.insert(item.fingerprint).second) {
        item.unique = true;
      } else {
        ++result.stats.dedup_hits;
        obs::Count("search.dedup_hits");
      }
    }

    // Phase B (parallel): cost the surviving candidates, truncated to the
    // remaining candidate budget. Truncation happens on the
    // deterministically ordered todo list, so a candidate budget yields
    // bit-for-bit identical results at every thread count.
    std::vector<size_t> todo;
    for (size_t k = 0; k < items.size(); ++k) {
      if (items[k].unique) todo.push_back(k);
    }
    bool candidate_budget_hit = false;
    if (options.max_candidates > 0) {
      int64_t remaining = options.max_candidates - candidates_budgeted;
      if (remaining < static_cast<int64_t>(todo.size())) {
        candidate_budget_hit = true;
        todo.resize(remaining > 0 ? static_cast<size_t>(remaining) : 0);
      }
    }
    candidates_budgeted += static_cast<int64_t>(todo.size());
    ParallelFor(
        todo.size(), threads,
        [&](size_t j) {
          if (past_deadline()) {
            cancel.Cancel();
            return;
          }
          int64_t t0 = obs::NowNanos();
          CandidateItem& item = items[todo[j]];
          item.cost_attempted = true;
          auto cost = coster.Cost(*item.schema);
          if (cost.ok()) {
            item.cost = *cost;
          } else if (item.error.empty()) {
            item.error = cost.status().ToString();
          }
          work_ns.fetch_add(obs::NowNanos() - t0, std::memory_order_relaxed);
        },
        &cancel);

    // Select sequentially in descriptor order: identical results and tie
    // breaks regardless of thread count. An attempted candidate without a
    // result was skipped on error; count it (an unattempted one was merely
    // cancelled and counts toward nothing).
    std::vector<BeamEntry> expanded;
    const CandidateItem* best_item = nullptr;
    double iter_best = std::numeric_limits<double>::infinity();
    int evaluated = 0;
    int failed = 0;
    for (auto& item : items) {
      if ((item.apply_attempted && !item.schema) ||
          (item.cost_attempted && !item.cost)) {
        ++failed;
        if (first_error.empty() && !item.error.empty()) {
          first_error = item.error;
        }
        continue;
      }
      if (!item.cost) continue;
      ++evaluated;
      if (*item.cost < iter_best) {
        iter_best = *item.cost;
        best_item = &item;
      }
      expanded.push_back(BeamEntry{std::move(*item.schema), *item.cost});
    }
    result.stats.candidates_failed += failed;
    obs::Count("search.candidates_evaluated", evaluated);
    if (failed > 0) obs::Count("search.candidates_failed", failed);
    double iter_work_ms = static_cast<double>(work_ns.load()) / 1e6;
    double iter_elapsed_ms =
        static_cast<double>(obs::NowNanos() - iter_start) / 1e6;
    if (iter_elapsed_ms > 0) {
      obs::Observe("search.parallel_speedup",
                   iter_work_ms / iter_elapsed_ms);
    }
    double threshold = best_cost * (1.0 - options.min_relative_improvement);
    bool improved = evaluated > 0 && iter_best < threshold;
    if (improved) {
      std::string best_move =
          best_item->desc.Describe(beam[best_item->entry].schema);
      std::sort(expanded.begin(), expanded.end(),
                [](const BeamEntry& a, const BeamEntry& b) {
                  return a.cost < b.cost;
                });
      if (static_cast<int>(expanded.size()) > beam_width) {
        expanded.resize(static_cast<size_t>(beam_width));
      }
      beam = std::move(expanded);
      best_cost = beam[0].cost;
      best_schema = beam[0].schema;
      result.trace.push_back(SearchResult::IterationLog{
          iter, best_cost, best_move, evaluated,
          static_cast<int>(items.size()), failed,
          static_cast<double>(obs::NowNanos() - iter_start) / 1e6,
          iter_work_ms});
    }

    // Budget checks, after the iteration's (possibly partial) results are
    // folded in: a degraded stop still keeps the best-so-far improvement.
    if (cancel.cancelled() || past_deadline()) {
      stop_reason = "wall-clock budget (" +
                    std::to_string(options.budget_ms) + "ms) exhausted";
      break;
    }
    if (!improved && !candidate_budget_hit) {
      converged = true;  // every neighbor evaluated, none improves
      break;
    }
    if (candidate_budget_hit ||
        (options.max_candidates > 0 &&
         candidates_budgeted >= options.max_candidates)) {
      stop_reason = "candidate budget (" +
                    std::to_string(options.max_candidates) + ") exhausted";
      break;
    }
  }

  if (!converged && stop_reason.empty()) {
    // The loop ran out of iterations while still improving.
    stop_reason = "iteration budget (" +
                  std::to_string(options.max_iterations) + ") exhausted";
  }
  if (result.stats.candidates_failed > 0) {
    std::string skipped =
        std::to_string(result.stats.candidates_failed) +
        " candidate evaluation(s) skipped on error";
    if (!first_error.empty()) skipped += " (first: " + first_error + ")";
    stop_reason = stop_reason.empty() ? skipped : stop_reason + "; " + skipped;
  }
  if (!stop_reason.empty()) {
    result.degraded = true;
    result.degraded_reason = std::move(stop_reason);
    obs::Count("search.degraded");
  }

  coster.FillStats(&result.stats);
  result.best_schema = std::move(best_schema);
  result.best_cost = best_cost;
  return result;
}

}  // namespace legodb::core
