#include "core/search.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>

#include "obs/obs.h"
#include "optimizer/optimizer.h"
#include "translate/translate.h"

namespace legodb::core {

SearchOptions GreedySiOptions() {
  SearchOptions o;
  o.start = SearchOptions::Start::kAllInlined;
  o.transforms.inline_types = false;
  o.transforms.outline_elements = true;
  return o;
}

SearchOptions GreedySoOptions() {
  SearchOptions o;
  o.start = SearchOptions::Start::kAllOutlined;
  o.transforms.inline_types = true;
  o.transforms.outline_elements = false;
  return o;
}

namespace {

// Costs workloads against configurations, reusing a query's estimate when
// its translated SQL and the statistics of every table it touches are
// unchanged from an earlier configuration. Most single transformations
// affect one or two types, so most workload queries hit the cache.
class CachedCoster {
 public:
  CachedCoster(const Workload& workload, const opt::CostParams& params,
               bool enabled)
      : workload_(workload), params_(params), enabled_(enabled) {
    caches_.resize(workload.queries.size());
  }

  StatusOr<double> Cost(const xs::Schema& pschema, SearchStats* stats) {
    LEGODB_ASSIGN_OR_RETURN(map::Mapping mapping, map::MapSchema(pschema));
    opt::Optimizer optimizer(mapping.catalog(), params_);
    double total = 0;
    for (size_t i = 0; i < workload_.queries.size(); ++i) {
      const WorkloadQuery& wq = workload_.queries[i];
      LEGODB_ASSIGN_OR_RETURN(opt::RelQuery rq,
                              xlat::TranslateQuery(wq.query, mapping));
      std::string key;
      if (enabled_) {
        key = CacheKey(rq, mapping.catalog());
        auto it = caches_[i].find(key);
        if (it != caches_[i].end()) {
          ++stats->cache_hits;
          obs::Count("search.cache_hits");
          total += wq.weight * it->second;
          continue;
        }
      }
      LEGODB_ASSIGN_OR_RETURN(opt::PlannedQuery planned,
                              optimizer.PlanQuery(rq));
      ++stats->cost_evaluations;
      obs::Count("search.cost_evaluations");
      if (enabled_) caches_[i][key] = planned.total_cost;
      total += wq.weight * planned.total_cost;
    }
    for (const auto& op : workload_.updates) {
      LEGODB_ASSIGN_OR_RETURN(double cost,
                              CostUpdate(mapping, op, params_));
      total += op.weight * cost;
    }
    return total;
  }

 private:
  static std::string CacheKey(const opt::RelQuery& rq,
                              const rel::Catalog& catalog) {
    std::string key = rq.ToSql();
    std::set<std::string> tables;
    for (const auto& block : rq.blocks) {
      for (const auto& rel : block.rels) tables.insert(rel.table);
    }
    for (const auto& name : tables) {
      const rel::Table& t = catalog.GetTable(name);
      double distincts = 0, null_frac = 0;
      for (const auto& col : t.columns) {
        distincts += col.distincts;
        null_frac += col.null_fraction;
      }
      key += "|" + name + "#" + std::to_string(t.row_count) + "#" +
             std::to_string(t.RowWidth()) + "#" +
             std::to_string(t.columns.size()) + "#" +
             std::to_string(distincts) + "#" + std::to_string(null_frac);
    }
    return key;
  }

  const Workload& workload_;
  const opt::CostParams& params_;
  bool enabled_;
  std::vector<std::map<std::string, double>> caches_;
};

struct BeamEntry {
  xs::Schema schema;
  double cost = 0;
};

}  // namespace

StatusOr<SearchResult> GreedySearch(const xs::Schema& annotated_schema,
                                    const Workload& workload,
                                    const opt::CostParams& params,
                                    const SearchOptions& options) {
  obs::Span search_span("search");
  int64_t phase_start = obs::NowNanos();
  xs::Schema initial;
  switch (options.start) {
    case SearchOptions::Start::kAllInlined:
      initial = ps::AllInlined(annotated_schema);
      break;
    case SearchOptions::Start::kAllOutlined:
      initial = ps::AllOutlined(annotated_schema);
      break;
    case SearchOptions::Start::kAsIs:
      initial = ps::Normalize(annotated_schema);
      break;
  }

  SearchResult result;
  CachedCoster coster(workload, params, options.cache_query_costs);
  double initial_cost;
  {
    obs::Span initial_span("search.initial_cost");
    LEGODB_ASSIGN_OR_RETURN(initial_cost,
                            coster.Cost(initial, &result.stats));
  }

  int beam_width = std::max(1, options.beam_width);
  std::vector<BeamEntry> beam = {BeamEntry{initial, initial_cost}};
  xs::Schema best_schema = std::move(initial);
  double best_cost = initial_cost;
  // Configurations already evaluated anywhere in the run.
  std::set<std::string> seen = {best_schema.ToString()};

  result.trace.push_back(SearchResult::IterationLog{
      0, best_cost, "", 0,
      static_cast<double>(obs::NowNanos() - phase_start) / 1e6});

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    obs::Span iter_span("search.iteration");
    int64_t iter_start = obs::NowNanos();
    obs::Count("search.iterations");
    std::vector<BeamEntry> expanded;
    std::string best_move;
    double iter_best = std::numeric_limits<double>::infinity();
    int evaluated = 0;
    for (const BeamEntry& entry : beam) {
      for (const auto& cand :
           EnumerateTransformations(entry.schema, options.transforms)) {
        auto next = ApplyTransformation(entry.schema, cand);
        if (!next.ok()) continue;
        std::string signature = next->ToString();
        if (!seen.insert(signature).second) continue;
        auto next_cost = coster.Cost(next.value(), &result.stats);
        if (!next_cost.ok()) continue;
        ++evaluated;
        if (*next_cost < iter_best) {
          iter_best = *next_cost;
          best_move = cand.description;
        }
        expanded.push_back(BeamEntry{std::move(next).value(), *next_cost});
      }
    }
    obs::Count("search.candidates_evaluated", evaluated);
    double threshold = best_cost * (1.0 - options.min_relative_improvement);
    if (evaluated == 0 || iter_best >= threshold) break;

    std::sort(expanded.begin(), expanded.end(),
              [](const BeamEntry& a, const BeamEntry& b) {
                return a.cost < b.cost;
              });
    if (static_cast<int>(expanded.size()) > beam_width) {
      expanded.resize(static_cast<size_t>(beam_width));
    }
    beam = std::move(expanded);
    best_cost = beam[0].cost;
    best_schema = beam[0].schema;
    result.trace.push_back(SearchResult::IterationLog{
        iter, best_cost, best_move, evaluated,
        static_cast<double>(obs::NowNanos() - iter_start) / 1e6});
  }

  result.best_schema = std::move(best_schema);
  result.best_cost = best_cost;
  return result;
}

}  // namespace legodb::core
