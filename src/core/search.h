#ifndef LEGODB_CORE_SEARCH_H_
#define LEGODB_CORE_SEARCH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/cost.h"
#include "core/transforms.h"
#include "core/workload.h"

namespace legodb::core {

// Options for the greedy configuration search (Algorithm 4.1).
struct SearchOptions {
  // Initial configuration derived from the (annotated) input schema.
  enum class Start {
    kAllInlined,   // greedy-si start: everything inlined except collections
    kAllOutlined,  // greedy-so start: everything outlined except base types
    kAsIs,         // normalize the input schema and start from it
  };
  Start start = Start::kAllInlined;

  // Move set offered to the search. The paper's prototype searches over
  // inline/outline; the structural rewritings can be switched on too.
  TransformOptions transforms;

  // Stop when the best candidate improves cost by less than this fraction
  // (0 reproduces the paper's strict Algorithm 4.1 termination).
  double min_relative_improvement = 0;

  int max_iterations = 64;

  // Beam width: 1 reproduces the paper's greedy search; k > 1 keeps the k
  // best configurations per iteration and expands all of them — the
  // "dynamic programming search strategies" extension the paper's
  // Section 7 proposes. The result is the best configuration ever seen.
  int beam_width = 1;

  // Reuse query cost estimates across candidate configurations when the
  // translated SQL and the statistics of the tables it touches are
  // unchanged (most single transformations leave most workload queries
  // untouched). Implements the Section-7 idea of letting the optimizer
  // "reuse partial results from one evaluation to the next".
  bool cache_query_costs = true;
};

// Counters exposed for tests/benchmarks of the cost cache.
struct SearchStats {
  int64_t cost_evaluations = 0;  // optimizer invocations (query granularity)
  int64_t cache_hits = 0;
};

struct SearchResult {
  xs::Schema best_schema;
  double best_cost = 0;
  SearchStats stats;

  struct IterationLog {
    int iteration = 0;       // 0 is the initial configuration
    double cost = 0;         // cost after this iteration
    std::string applied;     // transformation taken ("" for iteration 0)
    int candidates = 0;      // number of candidates evaluated
    double elapsed_ms = 0;   // wall time spent on this iteration
  };
  std::vector<IterationLog> trace;
};

// Greedy search for an efficient configuration (Algorithm 4.1): derive the
// initial physical schema, then repeatedly move to the cheapest
// single-transformation neighbour until no move improves the cost.
StatusOr<SearchResult> GreedySearch(const xs::Schema& annotated_schema,
                                    const Workload& workload,
                                    const opt::CostParams& params,
                                    const SearchOptions& options);

// The two search variants of Section 5.2.
SearchOptions GreedySiOptions();  // start all-inlined, apply outlining
SearchOptions GreedySoOptions();  // start all-outlined, apply inlining

}  // namespace legodb::core

#endif  // LEGODB_CORE_SEARCH_H_
