#ifndef LEGODB_CORE_SEARCH_H_
#define LEGODB_CORE_SEARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cost.h"
#include "core/transforms.h"
#include "core/workload.h"
#include "optimizer/plan.h"

namespace legodb::core {

// Options for the greedy configuration search (Algorithm 4.1).
struct SearchOptions {
  // Initial configuration derived from the (annotated) input schema.
  enum class Start {
    kAllInlined,   // greedy-si start: everything inlined except collections
    kAllOutlined,  // greedy-so start: everything outlined except base types
    kAsIs,         // normalize the input schema and start from it
  };
  Start start = Start::kAllInlined;

  // Move set offered to the search. The paper's prototype searches over
  // inline/outline; the structural rewritings can be switched on too.
  TransformOptions transforms;

  // Stop when the best candidate improves cost by less than this fraction
  // (0 reproduces the paper's strict Algorithm 4.1 termination).
  double min_relative_improvement = 0;

  // --- Budgets. Algorithm 4.1 stops only when no neighbor improves; a
  // deadline-bound caller instead bounds the work and accepts the
  // best-so-far configuration. Exceeding any budget terminates the search
  // gracefully: the result is always a valid, fully costed configuration,
  // with SearchResult::degraded set and degraded_reason describing which
  // budget ran out. 0 means unlimited (except max_iterations).
  //
  // Candidate/iteration budgets are enforced at deterministic points, so
  // results are bit-for-bit reproducible at any thread count; the
  // wall-clock budget cancels in-flight workers cooperatively and is NOT
  // reproducible (which candidates finished depends on timing).

  // Iteration budget: stop after this many greedy steps.
  int max_iterations = 64;

  // Wall-clock budget for the whole search, milliseconds.
  int64_t budget_ms = 0;

  // Candidate budget: total candidate configurations costed across the
  // run (the initial configuration is not counted).
  int64_t max_candidates = 0;

  // Failpoint spec armed for the duration of this search and disarmed on
  // exit (see common/failpoint.h for the grammar). An invalid spec fails
  // the search with InvalidArgument.
  std::string failpoints;

  // Beam width: 1 reproduces the paper's greedy search; k > 1 keeps the k
  // best configurations per iteration and expands all of them — the
  // "dynamic programming search strategies" extension the paper's
  // Section 7 proposes. The result is the best configuration ever seen.
  int beam_width = 1;

  // Reuse query cost estimates across candidate configurations when the
  // translated SQL and the statistics of the tables it touches are
  // unchanged (most single transformations leave most workload queries
  // untouched). Implements the Section-7 idea of letting the optimizer
  // "reuse partial results from one evaluation to the next". The cache is
  // keyed per query on a collision-safe 64-bit fingerprint of the
  // translated SQL plus the touched tables' statistics.
  bool cache_query_costs = true;

  // Worker threads for candidate evaluation: each iteration's neighbors
  // are applied and costed on a small pool. 0 means one worker per
  // hardware thread; 1 reproduces the serial search bit-for-bit. Results
  // (best schema, cost, iteration log) are identical for every thread
  // count: candidates are generated, deduped, and selected in a
  // deterministic order, with parallelism confined to the per-candidate
  // apply/map/translate/plan work.
  int threads = 0;
};

// Counters exposed for tests/benchmarks of the candidate-evaluation
// pipeline. Invariant (when every candidate costs cleanly):
//   cost_evaluations + cache_hits == schemas_costed * |workload queries|
// — every (configuration, query) pair is either planned or served from the
// fingerprint cache, exactly once, at any thread count.
struct SearchStats {
  int64_t cost_evaluations = 0;  // optimizer invocations (query granularity)
  int64_t cache_hits = 0;        // fingerprint-cache hits (query granularity)
  int64_t schemas_costed = 0;    // configurations fully costed (incl. initial)
  int64_t descriptors_enumerated = 0;  // transform descriptors generated
  int64_t dedup_hits = 0;  // candidates skipped by schema-fingerprint dedupe
  // Neighbor evaluations that failed (transform apply, translate or
  // optimizer error — forced by failpoints in tests) and were skipped
  // instead of failing the search. Skipped candidates relax the totals
  // invariant above to ">=": a candidate may fail after some of its
  // queries were already planned or served from the cache.
  int64_t candidates_failed = 0;
  int threads_used = 0;    // resolved worker count
};

struct SearchResult {
  xs::Schema best_schema;
  double best_cost = 0;
  SearchStats stats;

  // Degradation contract: when the search could not run Algorithm 4.1 to
  // convergence with every candidate evaluated — a budget ran out, or
  // candidate evaluations failed and were skipped — `degraded` is true and
  // `degraded_reason` says why. best_schema is still always a valid
  // p-schema (mappable via map::MapSchema) and best_cost its true cost:
  // degradation only means a cheaper configuration might exist.
  bool degraded = false;
  std::string degraded_reason;

  struct IterationLog {
    int iteration = 0;       // 0 is the initial configuration
    double cost = 0;         // cost after this iteration
    std::string applied;     // transformation taken ("" for iteration 0)
    int candidates = 0;      // number of candidates evaluated
    int descriptors = 0;     // transform descriptors enumerated
    int failed = 0;          // candidate evaluations skipped on error
    double elapsed_ms = 0;   // wall time spent on this iteration
    double work_ms = 0;      // summed per-candidate evaluation time; the
                             // ratio work_ms / elapsed_ms is the candidate
                             // concurrency achieved on this iteration (it
                             // overstates wall-clock speedup when workers
                             // outnumber available cores)
  };
  std::vector<IterationLog> trace;
};

// Greedy search for an efficient configuration (Algorithm 4.1): derive the
// initial physical schema, then repeatedly move to the cheapest
// single-transformation neighbour until no move improves the cost.
StatusOr<SearchResult> GreedySearch(const xs::Schema& annotated_schema,
                                    const Workload& workload,
                                    const opt::CostParams& params,
                                    const SearchOptions& options);

// The two search variants of Section 5.2.
SearchOptions GreedySiOptions();  // start all-inlined, apply outlining
SearchOptions GreedySoOptions();  // start all-outlined, apply inlining

// Collision-safe cost-cache key for one translated query: a 64-bit hash of
// the rendered SQL combined with a fingerprint of every touched table
// (row count, key/foreign-key structure, and each column's type, width,
// null fraction, distinct count and range hashed individually — unlike the
// historical string key, which summed per-column statistics and could
// collide across different column distributions). Exposed for tests.
uint64_t CostCacheFingerprint(const opt::RelQuery& query,
                              const rel::Catalog& catalog);

}  // namespace legodb::core

#endif  // LEGODB_CORE_SEARCH_H_
