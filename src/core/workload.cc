#include "core/workload.h"

#include <functional>
#include <set>

#include "common/str_util.h"

namespace legodb::core {

Status Workload::Add(const std::string& name, const std::string& text,
                     double weight) {
  LEGODB_ASSIGN_OR_RETURN(xq::Query q, xq::ParseQuery(text));
  queries.push_back(WorkloadQuery{name, std::move(q), weight});
  return Status::OK();
}

void Workload::AddUpdate(const std::string& name, UpdateOp::Kind kind,
                         const std::string& slash_path, double weight) {
  UpdateOp op;
  op.name = name;
  op.kind = kind;
  op.weight = weight;
  for (const auto& step : StrSplit(slash_path, '/')) {
    if (!step.empty()) op.path.push_back(step);
  }
  updates.push_back(std::move(op));
}

double Workload::TotalWeight() const {
  double total = 0;
  for (const auto& q : queries) total += q.weight;
  for (const auto& u : updates) total += u.weight;
  return total;
}

namespace {
void CollectSteps(const xq::Query& q, std::set<std::string>* out) {
  auto add_path = [&](const std::vector<std::string>& steps) {
    for (const auto& s : steps) out->insert(s);
  };
  for (const auto& f : q.fors) add_path(f.steps);
  for (const auto& p : q.where) {
    add_path(p.lhs.steps);
    if (p.rhs_is_path) add_path(p.rhs_path.steps);
  }
  std::function<void(const std::vector<xq::ReturnItem>&)> visit =
      [&](const std::vector<xq::ReturnItem>& items) {
        for (const auto& item : items) {
          switch (item.kind) {
            case xq::ReturnItem::Kind::kPath:
              add_path(item.path.steps);
              break;
            case xq::ReturnItem::Kind::kSubquery:
              CollectSteps(*item.subquery, out);
              break;
            case xq::ReturnItem::Kind::kElement:
              visit(item.children);
              break;
          }
        }
      };
  visit(q.ret);
}
}  // namespace

std::vector<std::string> Workload::PathStepNames() const {
  std::set<std::string> steps;
  for (const auto& q : queries) CollectSteps(q.query, &steps);
  return std::vector<std::string>(steps.begin(), steps.end());
}

Workload Workload::Mix(const Workload& a, const Workload& b, double k) {
  Workload mixed;
  double wa = a.TotalWeight();
  double wb = b.TotalWeight();
  for (const auto& q : a.queries) {
    mixed.queries.push_back(
        WorkloadQuery{q.name, q.query, wa > 0 ? k * q.weight / wa : 0});
  }
  for (const auto& q : b.queries) {
    mixed.queries.push_back(WorkloadQuery{
        q.name, q.query, wb > 0 ? (1 - k) * q.weight / wb : 0});
  }
  return mixed;
}

}  // namespace legodb::core
