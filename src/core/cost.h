#ifndef LEGODB_CORE_COST_H_
#define LEGODB_CORE_COST_H_

#include <vector>

#include "common/status.h"
#include "core/workload.h"
#include "mapping/mapping.h"
#include "optimizer/cost_model.h"
#include "xschema/schema.h"

namespace legodb::core {

// Cost of one storage configuration for a workload — the paper's
// GetPSchemaCost: map the p-schema to relations, translate each query, ask
// the optimizer, and combine with workload weights. Update operations (the
// Section-7 extension) are costed analytically and included in the total.
struct SchemaCost {
  double total = 0;                  // sum of weight * operation cost
  std::vector<double> per_query;     // unweighted per-query costs
  std::vector<double> per_update;    // unweighted per-update costs
};

StatusOr<SchemaCost> CostSchema(const xs::Schema& pschema,
                                const Workload& workload,
                                const opt::CostParams& params);

// Convenience: cost of a single query against a pre-built mapping.
StatusOr<double> CostQuery(const map::Mapping& mapping, const xq::Query& query,
                           const opt::CostParams& params);

// Cost of one update operation against a configuration:
//  - inserting an instance of an *outlined* element writes one row into its
//    table (plus expected descendant rows), each paying row bytes and
//    per-index maintenance seeks;
//  - inserting content that is *inlined* into a wider relation pays a
//    read-modify-write of the whole row plus that table's index upkeep;
//  - both pay one index probe to locate the parent/owning row;
//  - deletes cost like inserts (tombstone + index maintenance).
// When the path resolves into several union partitions, costs average over
// the alternatives.
StatusOr<double> CostUpdate(const map::Mapping& mapping, const UpdateOp& op,
                            const opt::CostParams& params);

}  // namespace legodb::core

#endif  // LEGODB_CORE_COST_H_
