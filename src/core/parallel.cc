#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "obs/obs.h"

namespace legodb::core {

int ResolveThreads(int requested) {
  if (requested >= 1) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(size_t n, int threads,
                 const std::function<void(size_t)>& fn, CancelToken* cancel) {
  if (n == 0) return;
  int workers = std::min<size_t>(static_cast<size_t>(std::max(1, threads)), n);
  if (workers > 1 && fp::Triggered("parallel.force_serial")) workers = 1;
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) return;
      fn(i);
    }
    return;
  }
  obs::Registry* registry = obs::Current();
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    obs::ScopedRegistry scoped(registry);
    while (cancel == nullptr || !cancel->cancelled()) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers) - 1);
  for (int t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (auto& t : pool) t.join();
}

}  // namespace legodb::core
