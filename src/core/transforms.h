#ifndef LEGODB_CORE_TRANSFORMS_H_
#define LEGODB_CORE_TRANSFORMS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "pschema/pschema.h"
#include "xschema/schema.h"

namespace legodb::core {

// One applicable schema rewriting (Section 4.1), reified as a lightweight
// descriptor: transform kind + target type name + position parameters.
// Enumeration produces only descriptors — no candidate schema is built
// until a descriptor is applied — so the search can enumerate, dedupe, and
// schedule candidate moves cheaply and materialize schemas on demand.
struct TransformDescriptor {
  enum class Kind {
    kInline,               // elide a named type into its single use
    kOutline,              // give a nested element its own named type
    kUnionDistribute,      // (a,(b|c)) == (a,b | a,c) + distribution across
                           // the element: partitions the type (Fig. 4(c))
    kUnionToOptions,       // (t1|t2) ⊂ (t1?,t2?): inline union branches as
                           // nullable columns (lossy, from [19])
    kRepetitionSplit,      // a+ == a,a*: inline the first occurrence
    kRepetitionMerge,      // inverse of split
    kWildcardMaterialize,  // ~ == tag | ~!tag: partition wildcard content
  };

  Kind kind;
  std::string type_name;   // the type whose body is rewritten (or inlined)
  ps::NodePath path;       // position inside the body (kind-dependent)
  std::string tag;         // kWildcardMaterialize: tag to materialize

  // Compact canonical form, e.g. "outline:Show.0.2" — a stable identity
  // for logs, dedupe keys, and metrics.
  std::string Signature() const;

  // Human-readable description resolved against the schema the descriptor
  // was enumerated from (element names are looked up on demand rather than
  // stored in every descriptor).
  std::string Describe(const xs::Schema& schema) const;
};

// Legacy name, kept for call sites predating the descriptor refactor.
using Transformation = TransformDescriptor;

// Which rewritings the search may propose. The paper's greedy prototype
// explores inlining/outlining; the other rewritings are explored separately
// (Section 5.4), which the per-figure benchmarks replicate.
struct TransformOptions {
  bool inline_types = true;
  bool outline_elements = true;
  bool union_distribute = false;
  bool union_to_options = false;
  bool repetition_split = false;
  bool repetition_merge = false;
  bool wildcard_materialize = false;
  // Candidate tags for wildcard materialization (taken from workload paths).
  std::vector<std::string> wildcard_tags;
};

// Descriptors of all single transformations applicable to `schema` (a
// p-schema). Cheap: no candidate schemas are materialized.
std::vector<TransformDescriptor> EnumerateTransformations(
    const xs::Schema& schema, const TransformOptions& options);

// Applies one descriptor; the result is normalized back to a p-schema.
StatusOr<xs::Schema> ApplyTransformation(const xs::Schema& schema,
                                         const TransformDescriptor& t);

}  // namespace legodb::core

#endif  // LEGODB_CORE_TRANSFORMS_H_
