#ifndef LEGODB_CORE_TRANSFORMS_H_
#define LEGODB_CORE_TRANSFORMS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "pschema/pschema.h"
#include "xschema/schema.h"

namespace legodb::core {

// One applicable schema rewriting (Section 4.1), reified so the search can
// enumerate, describe, and apply candidate moves.
struct Transformation {
  enum class Kind {
    kInline,               // elide a named type into its single use
    kOutline,              // give a nested element its own named type
    kUnionDistribute,      // (a,(b|c)) == (a,b | a,c) + distribution across
                           // the element: partitions the type (Fig. 4(c))
    kUnionToOptions,       // (t1|t2) ⊂ (t1?,t2?): inline union branches as
                           // nullable columns (lossy, from [19])
    kRepetitionSplit,      // a+ == a,a*: inline the first occurrence
    kRepetitionMerge,      // inverse of split
    kWildcardMaterialize,  // ~ == tag | ~!tag: partition wildcard content
  };

  Kind kind;
  std::string type_name;   // the type whose body is rewritten (or inlined)
  ps::NodePath path;       // position inside the body (kind-dependent)
  std::string tag;         // kWildcardMaterialize: tag to materialize
  std::string description;
};

// Which rewritings the search may propose. The paper's greedy prototype
// explores inlining/outlining; the other rewritings are explored separately
// (Section 5.4), which the per-figure benchmarks replicate.
struct TransformOptions {
  bool inline_types = true;
  bool outline_elements = true;
  bool union_distribute = false;
  bool union_to_options = false;
  bool repetition_split = false;
  bool repetition_merge = false;
  bool wildcard_materialize = false;
  // Candidate tags for wildcard materialization (taken from workload paths).
  std::vector<std::string> wildcard_tags;
};

// All single transformations applicable to `schema` (a p-schema).
std::vector<Transformation> EnumerateTransformations(
    const xs::Schema& schema, const TransformOptions& options);

// Applies one transformation; the result is normalized back to a p-schema.
StatusOr<xs::Schema> ApplyTransformation(const xs::Schema& schema,
                                         const Transformation& t);

}  // namespace legodb::core

#endif  // LEGODB_CORE_TRANSFORMS_H_
