#include "core/transforms.h"

#include <cctype>
#include <functional>

#include "common/failpoint.h"

namespace legodb::core {

using ps::NodePath;
using xs::Schema;
using xs::Type;
using xs::TypePtr;

namespace {

bool IsUnionOfRefs(const TypePtr& t) {
  if (!t || t->kind != Type::Kind::kUnion) return false;
  for (const auto& alt : t->children) {
    if (alt->kind != Type::Kind::kTypeRef) return false;
  }
  return true;
}

// Visits every node of a type body with its path.
void VisitNodes(const TypePtr& t, NodePath* path,
                const std::function<void(const TypePtr&, const NodePath&)>& fn) {
  fn(t, *path);
  if (t->child) {
    path->push_back(0);
    VisitNodes(t->child, path, fn);
    path->pop_back();
  }
  for (size_t i = 0; i < t->children.size(); ++i) {
    path->push_back(static_cast<int>(i));
    VisitNodes(t->children[i], path, fn);
    path->pop_back();
  }
}

std::string Capitalized(std::string s) {
  if (!s.empty()) {
    s[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(s[0])));
  }
  return s;
}

std::string PathStr(const NodePath& path) {
  std::string out;
  for (int i : path) out += "." + std::to_string(i);
  return out.empty() ? "<root>" : out;
}

const char* KindName(TransformDescriptor::Kind kind) {
  switch (kind) {
    case TransformDescriptor::Kind::kInline: return "inline";
    case TransformDescriptor::Kind::kOutline: return "outline";
    case TransformDescriptor::Kind::kUnionDistribute: return "distribute";
    case TransformDescriptor::Kind::kUnionToOptions: return "options";
    case TransformDescriptor::Kind::kRepetitionSplit: return "split";
    case TransformDescriptor::Kind::kRepetitionMerge: return "merge";
    case TransformDescriptor::Kind::kWildcardMaterialize: return "wildcard";
  }
  return "?";
}

}  // namespace

std::string TransformDescriptor::Signature() const {
  std::string out = std::string(KindName(kind)) + ":" + type_name;
  for (int i : path) out += "." + std::to_string(i);
  if (!tag.empty()) out += "'" + tag;
  return out;
}

std::string TransformDescriptor::Describe(const xs::Schema& schema) const {
  switch (kind) {
    case Kind::kInline:
      return "inline type " + type_name;
    case Kind::kOutline: {
      TypePtr body = schema.Find(type_name);
      TypePtr node = body ? ps::NodeAt(body, path) : nullptr;
      std::string element =
          node && node->kind == Type::Kind::kElement ? node->name.ToString()
                                                     : PathStr(path);
      return "outline element " + element + " from " + type_name;
    }
    case Kind::kUnionDistribute:
      return "distribute union in " + type_name + " at " + PathStr(path);
    case Kind::kUnionToOptions:
      return "union-to-options in " + type_name + " at " + PathStr(path);
    case Kind::kRepetitionSplit: {
      TypePtr body = schema.Find(type_name);
      TypePtr node = body ? ps::NodeAt(body, path) : nullptr;
      std::string repeated =
          node && node->kind == Type::Kind::kRepetition && node->child &&
                  node->child->kind == Type::Kind::kTypeRef
              ? node->child->ref_name
              : PathStr(path);
      return "split repetition of " + repeated + " in " + type_name;
    }
    case Kind::kRepetitionMerge: {
      std::string repeated = PathStr(path);
      TypePtr body = schema.Find(type_name);
      if (body && !path.empty()) {
        NodePath seq_path(path.begin(), path.end() - 1);
        size_t idx = static_cast<size_t>(path.back());
        TypePtr seq = ps::NodeAt(body, seq_path);
        if (seq && seq->kind == Type::Kind::kSequence &&
            idx + 1 < seq->children.size() &&
            seq->children[idx + 1]->kind == Type::Kind::kRepetition &&
            seq->children[idx + 1]->child->kind == Type::Kind::kTypeRef) {
          repeated = seq->children[idx + 1]->child->ref_name;
        }
      }
      return "merge repetition of " + repeated + " in " + type_name;
    }
    case Kind::kWildcardMaterialize:
      return "materialize wildcard tag '" + tag + "' in " + type_name;
  }
  return Signature();
}

std::vector<TransformDescriptor> EnumerateTransformations(
    const Schema& schema, const TransformOptions& options) {
  std::vector<TransformDescriptor> out;

  if (options.inline_types) {
    for (const auto& name : ps::EnumerateInlineCandidates(schema)) {
      TransformDescriptor t;
      t.kind = TransformDescriptor::Kind::kInline;
      t.type_name = name;
      out.push_back(std::move(t));
    }
  }
  if (options.outline_elements) {
    for (const auto& cand : ps::EnumerateOutlineCandidates(schema)) {
      TransformDescriptor t;
      t.kind = TransformDescriptor::Kind::kOutline;
      t.type_name = cand.type_name;
      t.path = cand.path;
      out.push_back(std::move(t));
    }
  }

  bool want_structural = options.union_distribute || options.union_to_options ||
                         options.repetition_split ||
                         options.repetition_merge ||
                         options.wildcard_materialize;
  if (!want_structural) return out;

  for (const auto& name : schema.ReachableFromRoot()) {
    TypePtr body = schema.Get(name);
    NodePath path;
    VisitNodes(body, &path, [&](const TypePtr& node, const NodePath& p) {
      // Union rewritings.
      if (IsUnionOfRefs(node)) {
        if (options.union_distribute && !p.empty() &&
            name != schema.root_type()) {
          TransformDescriptor t;
          t.kind = TransformDescriptor::Kind::kUnionDistribute;
          t.type_name = name;
          t.path = p;
          out.push_back(std::move(t));
        }
        if (options.union_to_options) {
          bool ok = true;
          for (const auto& alt : node->children) {
            if (schema.IsRecursive(alt->ref_name)) ok = false;
          }
          if (ok) {
            TransformDescriptor t;
            t.kind = TransformDescriptor::Kind::kUnionToOptions;
            t.type_name = name;
            t.path = p;
            out.push_back(std::move(t));
          }
        }
      }
      // Repetition split: a{m,n} with m >= 1 over a type reference.
      if (options.repetition_split && node->kind == Type::Kind::kRepetition &&
          node->min_occurs >= 1 && !(node->min_occurs == 1 && node->max_occurs == 1) &&
          node->child->kind == Type::Kind::kTypeRef &&
          !schema.IsRecursive(node->child->ref_name)) {
        TransformDescriptor t;
        t.kind = TransformDescriptor::Kind::kRepetitionSplit;
        t.type_name = name;
        t.path = p;
        out.push_back(std::move(t));
      }
      // Repetition merge: (X, C{0,n}) where X == body(C).
      if (options.repetition_merge && node->kind == Type::Kind::kSequence) {
        for (size_t i = 0; i + 1 < node->children.size(); ++i) {
          const TypePtr& x = node->children[i];
          const TypePtr& rep = node->children[i + 1];
          if (rep->kind != Type::Kind::kRepetition || rep->min_occurs != 0 ||
              rep->is_optional_rep() ||
              rep->child->kind != Type::Kind::kTypeRef) {
            continue;
          }
          TypePtr cbody = schema.Find(rep->child->ref_name);
          if (!cbody || !xs::TypeEqualsIgnoringStats(x, cbody)) continue;
          TransformDescriptor t;
          t.kind = TransformDescriptor::Kind::kRepetitionMerge;
          t.type_name = name;
          t.path = p;
          t.path.push_back(static_cast<int>(i));
          out.push_back(std::move(t));
        }
      }
      // Wildcard materialization (only plain '~' wildcards).
      if (options.wildcard_materialize &&
          node->kind == Type::Kind::kElement &&
          node->name.kind == xs::NameClass::Kind::kAny) {
        for (const auto& tag : options.wildcard_tags) {
          TransformDescriptor t;
          t.kind = TransformDescriptor::Kind::kWildcardMaterialize;
          t.type_name = name;
          t.path = p;
          t.tag = tag;
          out.push_back(std::move(t));
        }
      }
    });
  }
  return out;
}

namespace {

StatusOr<Schema> ApplyUnionDistribute(const Schema& schema,
                                      const Transformation& t) {
  TypePtr body = schema.Find(t.type_name);
  if (!body) return Status::NotFound("type " + t.type_name);
  TypePtr node = ps::NodeAt(body, t.path);
  if (!IsUnionOfRefs(node)) {
    return Status::InvalidArgument("no union of refs at path");
  }
  Schema out = schema;
  std::vector<TypePtr> part_refs;
  std::vector<std::string> alt_names;
  for (const auto& alt : node->children) {
    // Part_i: the body with the union narrowed to this alternative.
    TypePtr part_body = ps::ReplaceAt(body, t.path, alt);
    std::string part_name = out.FreshTypeName(t.type_name + "_Part");
    out.Define(part_name, std::move(part_body));
    part_refs.push_back(Type::Ref(part_name));
    alt_names.push_back(alt->ref_name);
  }
  out.Define(t.type_name, Type::Union(std::move(part_refs)));
  // Fold each alternative's content into its part when possible (the
  // paper's worked example inlines Movie/TV into Show_Part1/Show_Part2).
  for (const auto& alt_name : alt_names) {
    auto inlined = ps::InlineType(out, alt_name);
    if (inlined.ok()) out = std::move(inlined).value();
  }
  out.GarbageCollect();
  return ps::Normalize(out);
}

StatusOr<Schema> ApplyUnionToOptions(const Schema& schema,
                                     const Transformation& t) {
  TypePtr body = schema.Find(t.type_name);
  if (!body) return Status::NotFound("type " + t.type_name);
  TypePtr node = ps::NodeAt(body, t.path);
  if (!IsUnionOfRefs(node)) {
    return Status::InvalidArgument("no union of refs at path");
  }
  std::vector<TypePtr> options;
  double presence = 1.0 / static_cast<double>(node->children.size());
  for (const auto& alt : node->children) {
    TypePtr alt_body = schema.Find(alt->ref_name);
    if (!alt_body) return Status::NotFound("type " + alt->ref_name);
    options.push_back(Type::Repetition(alt_body, 0, 1, presence));
  }
  Schema out = schema;
  out.Define(t.type_name,
             ps::ReplaceAt(body, t.path, Type::Sequence(std::move(options))));
  out.GarbageCollect();
  return ps::Normalize(out);
}

StatusOr<Schema> ApplyRepetitionSplit(const Schema& schema,
                                      const Transformation& t) {
  TypePtr body = schema.Find(t.type_name);
  if (!body) return Status::NotFound("type " + t.type_name);
  TypePtr node = ps::NodeAt(body, t.path);
  if (!node || node->kind != Type::Kind::kRepetition ||
      node->min_occurs < 1 || node->child->kind != Type::Kind::kTypeRef) {
    return Status::InvalidArgument("no splittable repetition at path");
  }
  TypePtr cbody = schema.Find(node->child->ref_name);
  if (!cbody) return Status::NotFound("type " + node->child->ref_name);
  uint32_t rest_max =
      node->max_occurs == xs::kUnbounded ? xs::kUnbounded : node->max_occurs - 1;
  double rest_avg = node->avg_count > 1 ? node->avg_count - 1 : 0;
  TypePtr rest = Type::Repetition(node->child, node->min_occurs - 1, rest_max,
                                  rest_avg);
  TypePtr replacement = Type::Sequence({cbody, std::move(rest)});
  Schema out = schema;
  out.Define(t.type_name, ps::ReplaceAt(body, t.path, std::move(replacement)));
  out.GarbageCollect();
  return ps::Normalize(out);
}

StatusOr<Schema> ApplyRepetitionMerge(const Schema& schema,
                                      const Transformation& t) {
  TypePtr body = schema.Find(t.type_name);
  if (!body) return Status::NotFound("type " + t.type_name);
  if (t.path.empty()) return Status::InvalidArgument("bad merge path");
  NodePath seq_path(t.path.begin(), t.path.end() - 1);
  size_t idx = static_cast<size_t>(t.path.back());
  TypePtr seq = ps::NodeAt(body, seq_path);
  if (!seq || seq->kind != Type::Kind::kSequence ||
      idx + 1 >= seq->children.size()) {
    return Status::InvalidArgument("no mergeable sequence at path");
  }
  const TypePtr& x = seq->children[idx];
  const TypePtr& rep = seq->children[idx + 1];
  if (rep->kind != Type::Kind::kRepetition ||
      rep->child->kind != Type::Kind::kTypeRef) {
    return Status::InvalidArgument("no repetition after merge position");
  }
  TypePtr cbody = schema.Find(rep->child->ref_name);
  if (!cbody || !xs::TypeEqualsIgnoringStats(x, cbody)) {
    return Status::InvalidArgument("merge candidate does not match type body");
  }
  uint32_t new_max =
      rep->max_occurs == xs::kUnbounded ? xs::kUnbounded : rep->max_occurs + 1;
  std::vector<TypePtr> children = seq->children;
  children.erase(children.begin() + static_cast<ptrdiff_t>(idx));
  children[idx] = Type::Repetition(rep->child, rep->min_occurs + 1, new_max,
                                   rep->avg_count + 1);
  Schema out = schema;
  out.Define(t.type_name,
             ps::ReplaceAt(body, seq_path, Type::Sequence(std::move(children))));
  return ps::Normalize(out);
}

StatusOr<Schema> ApplyWildcardMaterialize(const Schema& schema,
                                          const Transformation& t) {
  TypePtr body = schema.Find(t.type_name);
  if (!body) return Status::NotFound("type " + t.type_name);
  TypePtr node = ps::NodeAt(body, t.path);
  if (!node || node->kind != Type::Kind::kElement ||
      node->name.kind != xs::NameClass::Kind::kAny) {
    return Status::InvalidArgument("no plain wildcard element at path");
  }
  Schema out = schema;
  std::string tagged_name = out.FreshTypeName(Capitalized(t.tag));
  out.Define(tagged_name, Type::Element(t.tag, node->child));
  std::string other_name = out.FreshTypeName("Other" + Capitalized(t.tag));
  out.Define(other_name,
             Type::Element(xs::NameClass::AnyExcept(t.tag), node->child));
  TypePtr replacement =
      Type::Union({Type::Ref(tagged_name), Type::Ref(other_name)});
  out.Define(t.type_name,
             ps::ReplaceAt(body, t.path, std::move(replacement)));
  return ps::Normalize(out);
}

}  // namespace

StatusOr<Schema> ApplyTransformation(const Schema& schema,
                                     const Transformation& t) {
  LEGODB_FAILPOINT("transforms.apply");
  switch (t.kind) {
    case Transformation::Kind::kInline: {
      // Re-normalize: inlining can duplicate references to shared types.
      LEGODB_ASSIGN_OR_RETURN(xs::Schema out,
                              ps::InlineType(schema, t.type_name));
      return ps::Normalize(out);
    }
    case Transformation::Kind::kOutline:
      return ps::OutlineAt(schema, t.type_name, t.path);
    case Transformation::Kind::kUnionDistribute:
      return ApplyUnionDistribute(schema, t);
    case Transformation::Kind::kUnionToOptions:
      return ApplyUnionToOptions(schema, t);
    case Transformation::Kind::kRepetitionSplit:
      return ApplyRepetitionSplit(schema, t);
    case Transformation::Kind::kRepetitionMerge:
      return ApplyRepetitionMerge(schema, t);
    case Transformation::Kind::kWildcardMaterialize:
      return ApplyWildcardMaterialize(schema, t);
  }
  return Status::Internal("unknown transformation");
}

}  // namespace legodb::core
