#ifndef LEGODB_CORE_LEGODB_H_
#define LEGODB_CORE_LEGODB_H_

#include <string>

#include "common/status.h"
#include "core/search.h"
#include "mapping/mapping.h"
#include "obs/obs.h"
#include "xschema/stats.h"

namespace legodb::core {

// The LegoDB mapping engine facade (Figure 7): purely XML-based inputs — an
// XML Schema in the algebra notation, data statistics in the Appendix-A
// notation (or collected from sample documents), and a weighted XQuery
// workload — and a relational storage configuration as output.
//
// Typical use:
//   MappingEngine engine;
//   engine.LoadSchemaText(schema_text);
//   engine.LoadStatsText(stats_text);
//   engine.AddQuery("Q1", "FOR $v IN ... RETURN ...", 0.4);
//   auto result = engine.FindBestConfiguration(GreedySoOptions());
//   std::cout << result->mapping.catalog().ToDdl();
class MappingEngine {
 public:
  MappingEngine() = default;

  Status LoadSchemaText(const std::string& text);
  Status LoadStatsText(const std::string& text);
  void SetSchema(xs::Schema schema) { schema_ = std::move(schema); }
  void SetStats(xs::StatsSet stats) { stats_ = std::move(stats); }
  Status AddQuery(const std::string& name, const std::string& text,
                  double weight);
  void SetWorkload(Workload workload) { workload_ = std::move(workload); }

  opt::CostParams* mutable_cost_params() { return &params_; }

  // The statistics-annotated input schema (p-schema source).
  StatusOr<xs::Schema> AnnotatedSchema() const;

  struct Result {
    SearchResult search;
    map::Mapping mapping;  // relational configuration of the best schema
    // Trace + metrics of the run: phase spans (annotate/search/map_schema),
    // search/optimizer/translate counters and timing histograms.
    obs::Report report;
  };

  // Runs the greedy search and maps the winner to relations. Instruments
  // the whole run against a private obs::Registry whose snapshot is
  // returned in Result::report.
  StatusOr<Result> FindBestConfiguration(
      const SearchOptions& options = GreedySoOptions()) const;

  // Costs a fixed configuration (no search), e.g. the ALL-INLINED baseline.
  StatusOr<SchemaCost> CostConfiguration(const xs::Schema& pschema) const;

  const Workload& workload() const { return workload_; }
  const xs::Schema& schema() const { return schema_; }
  const xs::StatsSet& stats() const { return stats_; }

 private:
  xs::Schema schema_;
  xs::StatsSet stats_;
  Workload workload_;
  opt::CostParams params_;
};

}  // namespace legodb::core

#endif  // LEGODB_CORE_LEGODB_H_
