#include "core/legodb.h"

#include "xschema/annotate.h"
#include "xschema/schema_parser.h"

namespace legodb::core {

Status MappingEngine::LoadSchemaText(const std::string& text) {
  LEGODB_ASSIGN_OR_RETURN(xs::Schema schema, xs::ParseSchema(text));
  LEGODB_RETURN_IF_ERROR(schema.Validate());
  schema_ = std::move(schema);
  return Status::OK();
}

Status MappingEngine::LoadStatsText(const std::string& text) {
  LEGODB_ASSIGN_OR_RETURN(xs::StatsSet stats, xs::ParseStats(text));
  stats_ = std::move(stats);
  return Status::OK();
}

Status MappingEngine::AddQuery(const std::string& name,
                               const std::string& text, double weight) {
  return workload_.Add(name, text, weight);
}

StatusOr<xs::Schema> MappingEngine::AnnotatedSchema() const {
  LEGODB_RETURN_IF_ERROR(schema_.Validate());
  return xs::AnnotateSchema(schema_, stats_);
}

StatusOr<MappingEngine::Result> MappingEngine::FindBestConfiguration(
    const SearchOptions& options) const {
  LEGODB_ASSIGN_OR_RETURN(xs::Schema annotated, AnnotatedSchema());
  LEGODB_ASSIGN_OR_RETURN(
      SearchResult search,
      GreedySearch(annotated, workload_, params_, options));
  LEGODB_ASSIGN_OR_RETURN(map::Mapping mapping,
                          map::MapSchema(search.best_schema));
  return Result{std::move(search), std::move(mapping)};
}

StatusOr<SchemaCost> MappingEngine::CostConfiguration(
    const xs::Schema& pschema) const {
  return CostSchema(pschema, workload_, params_);
}

}  // namespace legodb::core
