#include "core/legodb.h"

#include "xschema/annotate.h"
#include "xschema/schema_parser.h"

namespace legodb::core {

Status MappingEngine::LoadSchemaText(const std::string& text) {
  LEGODB_ASSIGN_OR_RETURN(xs::Schema schema, xs::ParseSchema(text));
  LEGODB_RETURN_IF_ERROR(schema.Validate());
  schema_ = std::move(schema);
  return Status::OK();
}

Status MappingEngine::LoadStatsText(const std::string& text) {
  LEGODB_ASSIGN_OR_RETURN(xs::StatsSet stats, xs::ParseStats(text));
  stats_ = std::move(stats);
  return Status::OK();
}

Status MappingEngine::AddQuery(const std::string& name,
                               const std::string& text, double weight) {
  return workload_.Add(name, text, weight);
}

StatusOr<xs::Schema> MappingEngine::AnnotatedSchema() const {
  LEGODB_RETURN_IF_ERROR(schema_.Validate());
  return xs::AnnotateSchema(schema_, stats_);
}

StatusOr<MappingEngine::Result> MappingEngine::FindBestConfiguration(
    const SearchOptions& options) const {
  // Record against the caller's ambient registry when one is installed
  // (so a CLI/bench session sees search and execution in one trace);
  // otherwise a private registry scoped to this run. Either way the
  // snapshot travels with the result.
  obs::Registry local;
  obs::Registry* registry = obs::Current() ? obs::Current() : &local;
  StatusOr<Result> result = [&]() -> StatusOr<Result> {
    obs::ScopedRegistry scoped(registry);
    obs::Span total("find_best_configuration");
    xs::Schema annotated;
    {
      obs::Span span("annotate");
      LEGODB_ASSIGN_OR_RETURN(annotated, AnnotatedSchema());
    }
    LEGODB_ASSIGN_OR_RETURN(
        SearchResult search,
        GreedySearch(annotated, workload_, params_, options));
    map::Mapping mapping;
    {
      obs::Span span("map_schema");
      LEGODB_ASSIGN_OR_RETURN(mapping, map::MapSchema(search.best_schema));
    }
    return Result{std::move(search), std::move(mapping), obs::Report{}};
  }();
  if (result.ok()) result->report = registry->Snapshot();
  return result;
}

StatusOr<SchemaCost> MappingEngine::CostConfiguration(
    const xs::Schema& pschema) const {
  return CostSchema(pschema, workload_, params_);
}

}  // namespace legodb::core
