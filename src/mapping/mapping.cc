#include "mapping/mapping.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>
#include <set>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/str_util.h"
#include "pschema/pschema.h"

namespace legodb::map {

using xs::Schema;
using xs::Type;
using xs::TypePtr;

namespace {

// Width/distincts assumed for wildcard tag-name columns (no statistics
// exist for tag names themselves).
constexpr double kTildeWidth = 12;
constexpr double kTildeDistincts = 10;

std::string StepFor(const xs::NameClass& name) {
  return name.kind == xs::NameClass::Kind::kLiteral ? name.name : "~";
}

// Relative weights of a union's alternatives: statistics-derived ref
// weights when the annotator attached them, an even split otherwise.
std::vector<double> UnionSplit(const TypePtr& u) {
  size_t n = u->children.size();
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  double sum = 0;
  for (const auto& c : u->children) {
    if (c->ref_weight <= 0) return weights;
    sum += c->ref_weight;
  }
  if (sum <= 0) return weights;
  for (size_t i = 0; i < n; ++i) {
    weights[i] = u->children[i]->ref_weight / sum;
  }
  return weights;
}

}  // namespace

std::string BaseStep(const std::string& step) {
  size_t hash = step.rfind('#');
  if (hash == std::string::npos || hash == 0) return step;
  // "@name" steps never carry ordinals at position 0; verify digits follow.
  for (size_t i = hash + 1; i < step.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(step[i]))) return step;
  }
  return step.substr(0, hash);
}

std::string Mapping::ElementStep(const std::string& type_name,
                                 const xs::Type* node) const {
  auto type_it = element_steps_.find(type_name);
  if (type_it != element_steps_.end()) {
    auto it = type_it->second.find(node);
    if (it != type_it->second.end()) return it->second;
  }
  return StepFor(node->name);
}

const TypeMapping* Mapping::FindType(const std::string& name) const {
  auto it = types_.find(name);
  return it == types_.end() ? nullptr : &it->second;
}

const TypeMapping& Mapping::GetType(const std::string& name) const {
  const TypeMapping* tm = FindType(name);
  LEGODB_CHECK(tm != nullptr, "Mapping::GetType: unknown type");
  return *tm;
}

std::vector<std::string> Mapping::EntryNames(
    const std::string& type_name) const {
  std::vector<std::string> names;
  std::set<std::string> seen;
  std::function<void(const std::string&, int)> visit =
      [&](const std::string& name, int depth) {
        const TypeMapping* tm = FindType(name);
        if (!tm || depth > 16) return;
        if (tm->virtual_union) {
          for (const auto& alt : tm->union_alternatives) visit(alt, depth + 1);
          return;
        }
        auto add = [&](const RelPath& path) {
          if (path.empty()) return;
          std::string base = BaseStep(path[0]);
          std::string step = base == "~" ? "*" : base;
          if (!StartsWith(step, "@") && seen.insert(step).second) {
            names.push_back(step);
          }
        };
        for (const auto& slot : tm->slots) add(slot.path);
        for (const auto& child : tm->children) {
          if (!child.path.empty()) {
            add(child.path);
          } else {
            // Ref at the very top of the body: entries come from the child.
            visit(child.type_name, depth + 1);
          }
        }
      };
  visit(type_name, 0);
  return names;
}

// Builds the Mapping from a validated p-schema.
class Mapper {
 public:
  explicit Mapper(const Schema& schema) : schema_(schema) {}

  StatusOr<Mapping> Run() {
    LEGODB_RETURN_IF_ERROR(ps::CheckPhysical(schema_));
    for (const auto& name : schema_.ReachableFromRoot()) {
      AnalyzeType(name);
    }
    ComputeCounts();
    ComputeParents();
    LEGODB_RETURN_IF_ERROR(BuildCatalog());
    result_.schema_ = schema_;
    return std::move(result_);
  }

 private:
  void AnalyzeType(const std::string& name) {
    TypeMapping tm;
    tm.type_name = name;
    TypePtr body = schema_.Get(name);
    if (body->kind == Type::Kind::kUnion) {
      // Stratification guarantees the alternatives are refs.
      tm.virtual_union = true;
      std::vector<double> weights = UnionSplit(body);
      for (size_t i = 0; i < body->children.size(); ++i) {
        const auto& alt = body->children[i];
        tm.union_alternatives.push_back(alt->ref_name);
        ChildRef ref;
        ref.type_name = alt->ref_name;
        ref.expected_per_parent = weights[i];
        ref.optional = true;
        ref.in_union = true;
        tm.children.push_back(std::move(ref));
      }
    } else {
      tm.table = name;
      step_counts_.clear();
      RelPath path;
      WalkBody(body, &path, /*presence=*/1.0, /*optional=*/false, &tm);
      NameColumns(&tm, body);
    }
    result_.types_[name] = std::move(tm);
  }

  // Assigns the path step for an element node, suffixing an ordinal when
  // the same step already occurred among siblings at this position, and
  // records the assignment for Mapping::ElementStep.
  std::string AssignStep(const TypePtr& t, const RelPath& parent_path,
                         TypeMapping* tm) {
    std::string base = StepFor(t->name);
    int& count = step_counts_[parent_path][base];
    ++count;
    std::string step =
        count == 1 ? base : base + "#" + std::to_string(count);
    result_.element_steps_[tm->type_name][t.get()] = step;
    return step;
  }

  void WalkBody(const TypePtr& t, RelPath* path, double presence,
                bool optional, TypeMapping* tm) {
    switch (t->kind) {
      case Type::Kind::kEmpty:
        return;
      case Type::Kind::kScalar: {
        Slot slot;
        slot.path = *path;
        slot.scalar = t;
        slot.optional = optional;
        slot.presence = presence;
        tm->slots.push_back(std::move(slot));
        return;
      }
      case Type::Kind::kElement: {
        path->push_back(AssignStep(t, *path, tm));
        if (t->name.is_wildcard()) {
          Slot tilde;
          tilde.path = *path;
          tilde.is_tilde = true;
          tilde.wildcard_name = t->name;
          tilde.optional = optional;
          tilde.presence = presence;
          tm->slots.push_back(std::move(tilde));
        }
        WalkBody(t->child, path, presence, optional, tm);
        path->pop_back();
        return;
      }
      case Type::Kind::kAttribute: {
        path->push_back("@" + t->name.name);
        WalkBody(t->child, path, presence, optional, tm);
        path->pop_back();
        return;
      }
      case Type::Kind::kSequence: {
        for (const auto& c : t->children) {
          WalkBody(c, path, presence, optional, tm);
        }
        return;
      }
      case Type::Kind::kUnion: {
        // Non-top-level union of refs: each alternative is an exclusive,
        // optional child.
        std::vector<double> weights = UnionSplit(t);
        for (size_t i = 0; i < t->children.size(); ++i) {
          const auto& alt = t->children[i];
          LEGODB_CHECK(alt->kind == Type::Kind::kTypeRef,
                       "stratified union alternative must be a type ref");
          ChildRef ref;
          ref.path = *path;
          ref.type_name = alt->ref_name;
          ref.expected_per_parent = presence * weights[i];
          ref.optional = true;
          ref.in_union = true;
          tm->children.push_back(std::move(ref));
        }
        return;
      }
      case Type::Kind::kRepetition: {
        if (t->is_optional_rep()) {
          double p = t->avg_count > 0 ? std::min(1.0, t->avg_count) : 0.5;
          WalkBody(t->child, path, presence * p, /*optional=*/true, tm);
          return;
        }
        // Stratification: content is a ref or union of refs.
        double count = t->ExpectedCount() * presence;
        auto add_ref = [&](const std::string& ref_name, double expected,
                           bool in_union) {
          ChildRef ref;
          ref.path = *path;
          ref.type_name = ref_name;
          ref.expected_per_parent = expected;
          ref.optional = t->min_occurs == 0 || optional || in_union;
          ref.min_occurs = t->min_occurs;
          ref.max_occurs = t->max_occurs;
          ref.in_union = in_union;
          tm->children.push_back(std::move(ref));
        };
        if (t->child->kind == Type::Kind::kTypeRef) {
          add_ref(t->child->ref_name, count, false);
        } else {
          std::vector<double> weights = UnionSplit(t->child);
          for (size_t i = 0; i < t->child->children.size(); ++i) {
            add_ref(t->child->children[i]->ref_name, count * weights[i],
                    true);
          }
        }
        return;
      }
      case Type::Kind::kTypeRef: {
        ChildRef ref;
        ref.path = *path;
        ref.type_name = t->ref_name;
        ref.expected_per_parent = presence;
        ref.optional = optional;
        tm->children.push_back(std::move(ref));
        return;
      }
    }
  }

  // Assigns column names: path components joined by '_', dropping the body
  // root element's own step, mapping "@a" to "a" and wildcard steps to
  // nothing (the tilde column itself is named "tilde"). A scalar directly in
  // the root element is named after that element (e.g. table Aka, column
  // aka); a nameless position falls back to "_data".
  void NameColumns(TypeMapping* tm, const TypePtr& body) {
    std::string root_step;
    if (body->kind == Type::Kind::kElement &&
        body->name.kind == xs::NameClass::Kind::kLiteral) {
      root_step = body->name.name;
    }
    std::set<std::string> used;
    for (auto& slot : tm->slots) {
      std::vector<std::string> comps;
      for (size_t i = 0; i < slot.path.size(); ++i) {
        std::string step = BaseStep(slot.path[i]);
        if (i == 0 && !root_step.empty() && step == root_step) continue;
        if (step == "~") continue;
        if (StartsWith(step, "@")) step = step.substr(1);
        comps.push_back(std::move(step));
      }
      std::string name;
      if (slot.is_tilde) {
        comps.push_back("tilde");
        name = StrJoin(comps, "_");
      } else if (comps.empty()) {
        name = !root_step.empty() ? root_step : "_data";
      } else {
        name = StrJoin(comps, "_");
      }
      std::string unique = name;
      for (int i = 2; used.count(unique); ++i) {
        unique = name + "_" + std::to_string(i);
      }
      used.insert(unique);
      slot.column = std::move(unique);
    }
  }

  void ComputeCounts() {
    auto& types = result_.types_;
    // Recursive types with expansion factor >= 1 diverge; cap instance
    // counts so the fixpoint iteration (and downstream arithmetic) stays
    // finite.
    constexpr double kMaxInstances = 1e12;
    std::map<std::string, double> counts;
    counts[schema_.root_type()] = 1;
    for (int iter = 0; iter < 64; ++iter) {
      std::map<std::string, double> next;
      next[schema_.root_type()] = 1;
      for (const auto& [name, tm] : types) {
        double n = counts.count(name) ? counts[name] : 0;
        if (n <= 0) continue;
        for (const auto& child : tm.children) {
          double& slot = next[child.type_name];
          slot = std::min(kMaxInstances,
                          slot + n * child.expected_per_parent);
        }
      }
      counts = std::move(next);
    }
    for (auto& [name, tm] : types) {
      tm.instance_count = counts.count(name) ? counts[name] : 0;
    }
  }

  // Resolves FK targets: virtual union parents are contracted away.
  void ComputeParents() {
    auto& types = result_.types_;
    // Raw edges: parent -> (child, expected).
    for (auto& [child_name, child_tm] : types) {
      (void)child_name;
      child_tm.parents.clear();
    }
    // For each type T and each ChildRef C, attach an effective-parent link
    // to C (resolving virtual T up the chain).
    std::function<void(const std::string&, const std::string&, double,
                       std::set<std::string>*)>
        attach = [&](const std::string& parent, const std::string& child,
                     double expected, std::set<std::string>* guard) {
          if (!guard->insert(parent).second) return;
          auto it = types.find(parent);
          if (it == types.end()) return;
          if (!it->second.virtual_union) {
            TypeMapping& child_tm = types[child];
            // Merge with an existing link to the same parent, if any.
            for (auto& link : child_tm.parents) {
              if (link.parent_type == parent) {
                link.expected_per_parent += expected;
                return;
              }
            }
            child_tm.parents.push_back(TypeMapping::ParentLink{
                "parent_" + parent, parent, expected});
            return;
          }
          // Virtual parent: climb to ITS parents.
          for (const auto& [gp_name, gp_tm] : types) {
            for (const auto& ref : gp_tm.children) {
              if (ref.type_name != parent) continue;
              attach(gp_name, child, expected * ref.expected_per_parent,
                     guard);
            }
          }
        };
    for (const auto& [parent_name, parent_tm] : types) {
      for (const auto& ref : parent_tm.children) {
        std::set<std::string> guard;
        attach(parent_name, ref.type_name, ref.expected_per_parent, &guard);
      }
    }
  }

  Status BuildCatalog() {
    auto& types = result_.types_;
    for (const auto& name : schema_.ReachableFromRoot()) {
      TypeMapping& tm = types[name];
      if (tm.virtual_union) continue;
      rel::Table table;
      table.name = tm.table;
      table.row_count = std::max(0.0, tm.instance_count);
      table.key_column = tm.table + "_id";

      rel::Column key;
      key.name = table.key_column;
      key.type = rel::SqlType::Int();
      key.distincts = std::max(1.0, table.row_count);
      key.min = 1;
      key.max = static_cast<int64_t>(std::max(1.0, table.row_count));
      table.columns.push_back(std::move(key));

      for (const auto& slot : tm.slots) {
        rel::Column col;
        col.name = slot.column;
        col.nullable = slot.optional;
        col.null_fraction =
            std::clamp(1.0 - slot.presence, 0.0, 1.0);
        double nonnull_rows =
            std::max(1.0, table.row_count * (1.0 - col.null_fraction));
        if (slot.is_tilde) {
          col.type = rel::SqlType::Char(kTildeWidth);
          col.distincts = std::min(kTildeDistincts, nonnull_rows);
        } else if (slot.scalar->scalar_kind == xs::ScalarKind::kInteger) {
          col.type = rel::SqlType::Int();
          col.min = slot.scalar->scalar_stats.min;
          col.max = slot.scalar->scalar_stats.max;
          col.distincts = std::min(
              static_cast<double>(
                  std::max<int64_t>(1, slot.scalar->scalar_stats.distincts)),
              nonnull_rows);
        } else {
          col.type = rel::SqlType::Char(
              std::max(1.0, slot.scalar->scalar_stats.size));
          col.distincts = std::min(
              static_cast<double>(
                  std::max<int64_t>(1, slot.scalar->scalar_stats.distincts)),
              nonnull_rows);
        }
        table.columns.push_back(std::move(col));
      }

      for (const auto& link : tm.parents) {
        rel::Column fk;
        fk.name = link.fk_column;
        fk.type = rel::SqlType::Int();
        fk.nullable = tm.parents.size() > 1;
        double parent_rows =
            std::max(1.0, types[link.parent_type].instance_count);
        fk.distincts = std::min(parent_rows, std::max(1.0, table.row_count));
        fk.min = 1;
        fk.max = static_cast<int64_t>(parent_rows);
        table.columns.push_back(std::move(fk));
        table.foreign_keys.push_back(
            rel::ForeignKey{link.fk_column, types[link.parent_type].table});
      }
      LEGODB_RETURN_IF_ERROR(result_.catalog_.AddTable(std::move(table)));
    }
    return Status::OK();
  }

  const Schema& schema_;
  // Sibling-step occurrence counts for the type body being analyzed.
  std::map<RelPath, std::map<std::string, int>> step_counts_;
  Mapping result_;
};

StatusOr<Mapping> MapSchema(const Schema& pschema) {
  LEGODB_FAILPOINT("mapping.map_schema");
  return Mapper(pschema).Run();
}

}  // namespace legodb::map
