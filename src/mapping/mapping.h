#ifndef LEGODB_MAPPING_MAPPING_H_
#define LEGODB_MAPPING_MAPPING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/catalog.h"
#include "xschema/schema.h"

namespace legodb::map {

// Path steps inside a type body use element names verbatim, "@name" for
// attributes, and "~" for wildcard elements. When the same step repeats
// among siblings (e.g. two wildcard elements in one sequence), later
// occurrences carry an ordinal suffix: "~", "~#2", "~#3", ... so slot
// coordinates stay unambiguous.
using RelPath = std::vector<std::string>;

// Strips the "#k" ordinal suffix from a path step.
std::string BaseStep(const std::string& step);

// A scalar (or wildcard-tag) position inside a type body that maps to a
// column of the type's table.
struct Slot {
  RelPath path;          // from the body root, including the root element
  std::string column;    // column name in the table
  bool is_tilde = false;  // the tag-name column of a wildcard element
  // For tilde slots: the wildcard's name class ('~' or '~!a'), needed to
  // decide whether a literal query step can match this position.
  xs::NameClass wildcard_name;
  xs::TypePtr scalar;    // scalar type (nullptr for tilde slots)
  bool optional = false;  // sits under at least one optional
  double presence = 1.0;  // probability the column is non-null
};

// A reference to another named type inside a type body: becomes a
// parent/child table relationship with a foreign key in the child.
struct ChildRef {
  RelPath path;            // where the reference sits in the body
  std::string type_name;   // referenced (child) type
  double expected_per_parent = 1;  // average child rows per parent row
  bool optional = false;           // may be absent for a given parent
  uint32_t min_occurs = 1;
  uint32_t max_occurs = 1;
  bool in_union = false;  // reference is a union alternative
};

// How one named type maps to the relational configuration.
struct TypeMapping {
  std::string type_name;
  // Table name (same as type name); empty for virtual types.
  std::string table;
  // A type whose body is purely a union of type references (e.g.
  // `type Show = (Show_Part1 | Show_Part2)`) materializes no table of its
  // own; variables bound to it expand to the alternatives.
  bool virtual_union = false;
  std::vector<std::string> union_alternatives;  // when virtual_union

  std::vector<Slot> slots;
  std::vector<ChildRef> children;

  // Estimated number of instances (rows) of this type.
  double instance_count = 0;

  // Foreign keys of this type's table: (column, effective parent type).
  struct ParentLink {
    std::string fk_column;
    std::string parent_type;
    double expected_per_parent = 1;
  };
  std::vector<ParentLink> parents;
};

// The full fixed mapping rel(ps) of Section 3.2: one relation per
// (non-virtual) named type, a key column per relation, a foreign key per
// parent type, a column per physical-type subelement — plus the translated
// statistics, packaged as a relational catalog.
class Mapping {
 public:
  const rel::Catalog& catalog() const { return catalog_; }
  const TypeMapping* FindType(const std::string& name) const;
  const TypeMapping& GetType(const std::string& name) const;
  const std::map<std::string, TypeMapping>& types() const { return types_; }
  const xs::Schema& schema() const { return schema_; }

  // Entry element names of a type: the tags its instances can start with
  // ("*" for wildcard). Descends through virtual unions.
  std::vector<std::string> EntryNames(const std::string& type_name) const;

  // The (possibly ordinal-suffixed) path step assigned to an element node
  // of `type_name`'s body during mapping. The shredder and reconstructor
  // walk the same shared type nodes and use this to stay aligned with slot
  // coordinates.
  std::string ElementStep(const std::string& type_name,
                          const xs::Type* node) const;

 private:
  friend class Mapper;
  rel::Catalog catalog_;
  std::map<std::string, TypeMapping> types_;
  // Per type: element node -> assigned step.
  std::map<std::string, std::map<const xs::Type*, std::string>>
      element_steps_;
  xs::Schema schema_;
};

// Maps a p-schema (must pass ps::CheckPhysical) to its relational
// configuration, translating the XML statistics into table/column
// statistics along the way.
StatusOr<Mapping> MapSchema(const xs::Schema& pschema);

}  // namespace legodb::map

#endif  // LEGODB_MAPPING_MAPPING_H_
