#include "xml/writer.h"

namespace legodb::xml {
namespace {

void SerializeNode(const Node& node, bool pretty, int depth,
                   std::string* out) {
  std::string indent = pretty ? std::string(2 * depth, ' ') : std::string();
  if (node.is_text()) {
    *out += indent + EscapeText(node.text());
    if (pretty) *out += '\n';
    return;
  }
  *out += indent + "<" + node.name();
  for (const auto& [name, value] : node.attributes()) {
    *out += " " + name + "=\"" + EscapeText(value) + "\"";
  }
  if (node.children().empty()) {
    *out += "/>";
    if (pretty) *out += '\n';
    return;
  }
  // A single text child renders inline: <title>The Fugitive</title>.
  if (node.children().size() == 1 && node.children()[0]->is_text()) {
    *out += ">" + EscapeText(node.children()[0]->text()) + "</" + node.name() +
            ">";
    if (pretty) *out += '\n';
    return;
  }
  *out += ">";
  if (pretty) *out += '\n';
  for (const auto& child : node.children()) {
    SerializeNode(*child, pretty, depth + 1, out);
  }
  *out += indent + "</" + node.name() + ">";
  if (pretty) *out += '\n';
}

}  // namespace

std::string EscapeText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Serialize(const Node& node, bool pretty) {
  std::string out;
  SerializeNode(node, pretty, 0, &out);
  return out;
}

std::string Serialize(const Document& doc, bool pretty) {
  if (!doc.root) return "";
  return Serialize(*doc.root, pretty);
}

}  // namespace legodb::xml
