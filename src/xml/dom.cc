#include "xml/dom.h"

namespace legodb::xml {

NodePtr Node::Element(std::string name) {
  auto node = NodePtr(new Node(Kind::kElement));
  node->name_ = std::move(name);
  return node;
}

NodePtr Node::Text(std::string text) {
  auto node = NodePtr(new Node(Kind::kText));
  node->text_ = std::move(text);
  return node;
}

const std::string* Node::FindAttribute(const std::string& name) const {
  auto it = attributes_.find(name);
  return it == attributes_.end() ? nullptr : &it->second;
}

Node* Node::AddChild(NodePtr child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

NodePtr Node::ReleaseChild(size_t index) {
  NodePtr child = std::move(children_[index]);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(index));
  return child;
}

Node* Node::AddElement(const std::string& name, std::string text) {
  Node* child = AddChild(Element(name));
  if (!text.empty()) child->AddText(std::move(text));
  return child;
}

void Node::AddText(std::string text) { AddChild(Text(std::move(text))); }

std::string Node::TextContent() const {
  if (is_text()) return text_;
  std::string out;
  for (const auto& child : children_) out += child->TextContent();
  return out;
}

std::vector<const Node*> Node::ChildrenNamed(const std::string& name) const {
  std::vector<const Node*> result;
  for (const auto& child : children_) {
    if (child->is_element() && child->name() == name) {
      result.push_back(child.get());
    }
  }
  return result;
}

const Node* Node::FirstChildNamed(const std::string& name) const {
  for (const auto& child : children_) {
    if (child->is_element() && child->name() == name) return child.get();
  }
  return nullptr;
}

size_t Node::SubtreeSize() const {
  size_t n = 1;
  for (const auto& child : children_) n += child->SubtreeSize();
  return n;
}

}  // namespace legodb::xml
