#ifndef LEGODB_XML_WRITER_H_
#define LEGODB_XML_WRITER_H_

#include <string>

#include "xml/dom.h"

namespace legodb::xml {

// Serializes a node subtree back to XML text. With `pretty`, elements are
// indented two spaces per level; text content is emitted inline.
std::string Serialize(const Node& node, bool pretty = true);
std::string Serialize(const Document& doc, bool pretty = true);

// Escapes &, <, >, ", ' for use in character data / attribute values.
std::string EscapeText(const std::string& text);

}  // namespace legodb::xml

#endif  // LEGODB_XML_WRITER_H_
