#ifndef LEGODB_XML_DOM_H_
#define LEGODB_XML_DOM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace legodb::xml {

class Node;
using NodePtr = std::unique_ptr<Node>;

// An element node in an XML document tree. Text content is represented as
// child nodes with kind kText (mixed content is supported); attributes are a
// name -> value map on the element.
class Node {
 public:
  enum class Kind { kElement, kText };

  static NodePtr Element(std::string name);
  static NodePtr Text(std::string text);

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }

  // Element name (tag); empty for text nodes.
  const std::string& name() const { return name_; }
  // Text payload; empty for element nodes.
  const std::string& text() const { return text_; }

  const std::map<std::string, std::string>& attributes() const {
    return attributes_;
  }
  void SetAttribute(const std::string& name, std::string value) {
    attributes_[name] = std::move(value);
  }
  // Returns nullptr if the attribute is absent.
  const std::string* FindAttribute(const std::string& name) const;

  const std::vector<NodePtr>& children() const { return children_; }
  Node* AddChild(NodePtr child);
  // Detaches and returns the child at `index`.
  NodePtr ReleaseChild(size_t index);
  // Convenience: appends <name>text</name> and returns the new element.
  Node* AddElement(const std::string& name, std::string text = "");
  void AddText(std::string text);

  // Concatenation of all descendant text (the element's "string value").
  std::string TextContent() const;

  // Child elements named `name`, in document order.
  std::vector<const Node*> ChildrenNamed(const std::string& name) const;
  // First child element named `name`, or nullptr.
  const Node* FirstChildNamed(const std::string& name) const;

  // Number of nodes in this subtree (elements + text nodes).
  size_t SubtreeSize() const;

 private:
  explicit Node(Kind kind) : kind_(kind) {}

  Kind kind_;
  std::string name_;
  std::string text_;
  std::map<std::string, std::string> attributes_;
  std::vector<NodePtr> children_;
};

// An XML document: a single root element.
struct Document {
  NodePtr root;
};

}  // namespace legodb::xml

#endif  // LEGODB_XML_DOM_H_
