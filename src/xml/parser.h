#ifndef LEGODB_XML_PARSER_H_
#define LEGODB_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/dom.h"

namespace legodb::xml {

// Parses an XML document from `input`. Supports elements, attributes
// (single- or double-quoted), character data, CDATA sections, comments,
// processing instructions / XML declarations (skipped), and the five
// predefined entities. DTDs beyond a skipped <!DOCTYPE ...> declaration are
// not supported (the paper's system takes schemas separately).
StatusOr<Document> ParseDocument(std::string_view input);

}  // namespace legodb::xml

#endif  // LEGODB_XML_PARSER_H_
