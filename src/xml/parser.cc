#include "xml/parser.h"

#include <cctype>
#include <string>

#include "common/str_util.h"

namespace legodb::xml {
namespace {

// Recursive-descent XML parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  StatusOr<Document> Parse() {
    SkipProlog();
    if (Eof() || Peek() != '<') {
      return Error("expected root element");
    }
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    SkipMisc();
    if (!Eof()) return Error("trailing content after root element");
    Document doc;
    doc.root = std::move(root).value();
    return doc;
  }

 private:
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  bool LookingAt(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }
  void Advance(size_t n = 1) {
    for (size_t i = 0; i < n && pos_ < input_.size(); ++i) {
      if (input_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }
  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("XML line " + std::to_string(line_) + ": " +
                              msg);
  }

  // Skips the XML declaration, DOCTYPE, comments and PIs before the root.
  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<?")) {
        SkipUntil("?>");
      } else if (LookingAt("<!--")) {
        SkipUntil("-->");
      } else if (LookingAt("<!DOCTYPE")) {
        SkipDoctype();
      } else {
        return;
      }
    }
  }

  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (LookingAt("<!--")) {
        SkipUntil("-->");
      } else if (LookingAt("<?")) {
        SkipUntil("?>");
      } else {
        return;
      }
    }
  }

  void SkipUntil(std::string_view token) {
    size_t found = input_.find(token, pos_);
    if (found == std::string_view::npos) {
      pos_ = input_.size();
      return;
    }
    Advance(found - pos_ + token.size());
  }

  // <!DOCTYPE ...> possibly with a bracketed internal subset.
  void SkipDoctype() {
    int bracket_depth = 0;
    while (!Eof()) {
      char c = Peek();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth <= 0) {
        Advance();
        return;
      }
      Advance();
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
           c == '-' || c == '.';
  }

  StatusOr<std::string> ParseName() {
    if (Eof() || !IsNameStart(Peek())) return Error("expected name");
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  // Expands the five predefined entities and decimal/hex character refs.
  StatusOr<std::string> DecodeText(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) return Error("unterminated entity");
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out += '<';
      } else if (ent == "gt") {
        out += '>';
      } else if (ent == "amp") {
        out += '&';
      } else if (ent == "apos") {
        out += '\'';
      } else if (ent == "quot") {
        out += '"';
      } else if (!ent.empty() && ent[0] == '#') {
        int base = 10;
        std::string_view digits = ent.substr(1);
        if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
          base = 16;
          digits = digits.substr(1);
        }
        char* end = nullptr;
        std::string d(digits);
        long code = std::strtol(d.c_str(), &end, base);
        if (end == d.c_str() || code <= 0 || code > 0x10FFFF) {
          return Error("bad character reference");
        }
        // Encode as UTF-8.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (code >> 18));
          out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
      } else {
        return Error("unknown entity '&" + std::string(ent) + ";'");
      }
      i = semi;
    }
    return out;
  }

  StatusOr<NodePtr> ParseElement() {
    if (!LookingAt("<")) return Error("expected '<'");
    Advance();
    auto name = ParseName();
    if (!name.ok()) return name.status();
    NodePtr element = Node::Element(std::move(name).value());

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (Eof()) return Error("unterminated start tag");
      if (Peek() == '/' || Peek() == '>') break;
      auto attr_name = ParseName();
      if (!attr_name.ok()) return attr_name.status();
      SkipWhitespace();
      if (Peek() != '=') return Error("expected '=' in attribute");
      Advance();
      SkipWhitespace();
      char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return Error("expected quoted attribute value");
      }
      Advance();
      size_t start = pos_;
      while (!Eof() && Peek() != quote) Advance();
      if (Eof()) return Error("unterminated attribute value");
      auto decoded = DecodeText(input_.substr(start, pos_ - start));
      if (!decoded.ok()) return decoded.status();
      Advance();  // closing quote
      element->SetAttribute(attr_name.value(), std::move(decoded).value());
    }

    if (Peek() == '/') {
      Advance();
      if (Peek() != '>') return Error("expected '/>'");
      Advance();
      return element;
    }
    Advance();  // '>'

    // Content.
    std::string pending_text;
    auto flush_text = [&]() {
      // Whitespace-only runs between elements are formatting, not data.
      if (!StrTrim(pending_text).empty()) {
        element->AddText(std::string(StrTrim(pending_text)));
      }
      pending_text.clear();
    };
    while (true) {
      if (Eof()) return Error("unterminated element <" + element->name() + ">");
      if (LookingAt("</")) {
        flush_text();
        Advance(2);
        auto close_name = ParseName();
        if (!close_name.ok()) return close_name.status();
        if (close_name.value() != element->name()) {
          return Error("mismatched close tag </" + close_name.value() +
                       "> for <" + element->name() + ">");
        }
        SkipWhitespace();
        if (Peek() != '>') return Error("expected '>'");
        Advance();
        return element;
      }
      if (LookingAt("<!--")) {
        SkipUntil("-->");
        continue;
      }
      if (LookingAt("<![CDATA[")) {
        Advance(9);
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) return Error("unterminated CDATA");
        pending_text += std::string(input_.substr(pos_, end - pos_));
        Advance(end - pos_ + 3);
        continue;
      }
      if (LookingAt("<?")) {
        SkipUntil("?>");
        continue;
      }
      if (Peek() == '<') {
        flush_text();
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        element->AddChild(std::move(child).value());
        continue;
      }
      // Character data up to the next markup.
      size_t start = pos_;
      while (!Eof() && Peek() != '<') Advance();
      auto decoded = DecodeText(input_.substr(start, pos_ - start));
      if (!decoded.ok()) return decoded.status();
      pending_text += decoded.value();
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

StatusOr<Document> ParseDocument(std::string_view input) {
  return Parser(input).Parse();
}

}  // namespace legodb::xml
